"""Observability subsystem: metrics registry, tracing, ε-spend view.

Covers the PR 8 contracts:

* metrics — label correctness, kind safety, histogram bucketing,
  disabled no-ops, Prometheus rendering, and exact counts under the same
  threaded-stress shape the accountant survives;
* tracing — span nesting/parentage, trace IDs stamped on every route's
  answers with a resolvable span tree, the ring bound, and the
  checksummed JSONL sink;
* spend — the read-only WAL replay must reproduce
  ``PrivacyAccountant.recover``'s per-dataset totals bit-for-bit
  (including under a torn tail), through ``replay``/the CLI/
  ``Session.budget_report()``;
* the benchmark scenario rides tier-1 in quick mode.
"""

import json
import os
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.api import A, Schema, Session, marginal, prefix, total
from repro.linalg import Dense, Identity, Kronecker, Ones
from repro.obs.metrics import MetricsRegistry, NULL_METRIC
from repro.obs.spend import main as spend_main, replay
from repro.obs.trace import Tracer, read_trace_log
from repro.service import (
    PrivacyAccountant,
    QueryService,
    StrategyRegistry,
)
from repro.service.engine import Reconstruction


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def small_schema():
    return Schema.from_spec({"age": 8, "sex": ["M", "F"]})


def poisson_data(schema):
    rng = np.random.default_rng(5)
    return rng.poisson(20, schema.domain.shape()).astype(float)


def make_session(tmp_path, cap=100.0, wal=False, **kwargs):
    acct = PrivacyAccountant(
        default_cap=cap,
        wal_path=str(tmp_path / "eps.wal") if wal else None,
    )
    return Session(
        registry=StrategyRegistry(str(tmp_path / "reg")),
        accountant=acct,
        restarts=1,
        rng=0,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_disabled_registry_returns_null_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="b") is NULL_METRIC
        assert reg.gauge("y") is NULL_METRIC
        assert reg.histogram("z") is NULL_METRIC
        NULL_METRIC.inc()
        NULL_METRIC.set(3.0)
        NULL_METRIC.observe(1.0)
        assert reg.snapshot() == {}

    def test_counter_labels_and_keyword_order(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("hits", dataset="d", route="cache").inc()
        # Same label set, different keyword order: same child.
        reg.counter("hits", route="cache", dataset="d").inc(2.0)
        reg.counter("hits", dataset="d", route="cold").inc()
        snap = reg.snapshot()["hits"]
        assert snap["type"] == "counter"
        by_labels = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snap["series"]
        }
        assert by_labels[(("dataset", "d"), ("route", "cache"))] == 3.0
        assert by_labels[(("dataset", "d"), ("route", "cold"))] == 1.0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("m").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth", q="a")
        g.set(3.0)
        g.set(1.5)
        assert reg.snapshot()["depth"]["series"][0]["value"] == 1.5

    def test_histogram_bucketing(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        s = reg.snapshot()["lat"]["series"][0]
        assert s["edges"] == [1.0, 10.0, 100.0]
        assert s["buckets"] == [1, 2, 1, 1]  # last = overflow (+Inf)
        assert s["count"] == 5 and s["sum"] == pytest.approx(560.5)
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", buckets=(5.0, 1.0))

    def test_render_text_prometheus_format(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("service.answers_total", dataset='d"x', route="cache").inc()
        reg.histogram("t.ms", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.render_text()
        assert "# TYPE service_answers_total counter" in text
        # Escaped label value, sanitized metric name.
        assert 'service_answers_total{dataset="d\\"x",route="cache"} 1' in text
        # Cumulative buckets with the +Inf terminal and _sum/_count.
        assert 't_ms_bucket{le="1"} 0' in text
        assert 't_ms_bucket{le="2"} 1' in text
        assert 't_ms_bucket{le="+Inf"} 1' in text
        assert "t_ms_sum 1.5" in text and "t_ms_count 1" in text

    def test_threaded_counts_are_exact(self):
        reg = MetricsRegistry(enabled=True)
        n_threads, per_thread = 8, 400
        barrier = threading.Barrier(n_threads)

        def worker(t):
            barrier.wait()
            for i in range(per_thread):
                reg.counter("c", thread="shared").inc()
                reg.histogram("h", buckets=(10.0,)).observe(float(i % 3))

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        snap = reg.snapshot()
        assert snap["c"]["series"][0]["value"] == n_threads * per_thread
        assert snap["h"]["series"][0]["count"] == n_threads * per_thread


# ---------------------------------------------------------------------------
# tracing


class TestTracing:
    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tr = Tracer()
        with tr.span("a") as sp:
            assert sp is None
            assert tr.current_trace_id() is None
        assert tr.trace_ids() == []

    def test_span_nesting_and_parentage(self):
        tr = Tracer(enabled=True)
        with tr.span("root", q=3) as root:
            tid = tr.current_trace_id()
            with tr.span("child1") as c1:
                assert c1.parent_id == root.span_id
            with tr.span("child2") as c2:
                with tr.span("grandchild") as g:
                    assert g.parent_id == c2.span_id
        spans = tr.get_trace(tid)
        assert [s.name for s in spans] == [
            "child1", "grandchild", "child2", "root",
        ]
        assert all(s.trace_id == tid for s in spans)
        assert spans[-1].parent_id is None
        assert spans[-1].attrs == {"q": 3}
        assert all(s.duration_ms >= 0.0 for s in spans)
        # The trace is finished: no in-flight context remains.
        assert tr.current_trace_id() is None

    def test_error_annotation(self):
        tr = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                tid = tr.current_trace_id()
                raise RuntimeError("nope")
        (sp,) = tr.get_trace(tid)
        assert sp.error == "RuntimeError: nope"

    def test_ring_evicts_oldest(self):
        tr = Tracer(enabled=True, ring_size=3)
        ids = []
        for i in range(5):
            with tr.span(f"s{i}"):
                ids.append(tr.current_trace_id())
        assert tr.trace_ids() == ids[2:]
        assert tr.get_trace(ids[0]) is None

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        tr = Tracer(enabled=True)
        from repro.obs.trace import JsonlTraceSink

        tr.sink = JsonlTraceSink(path)
        with tr.span("outer", dataset="d"):
            with tr.span("inner"):
                pass
        records = read_trace_log(path)  # crc-verifies every line
        assert [r["kind"] for r in records] == ["trace", "span", "span"]
        assert records[0]["spans"] == 2
        names = {r["name"] for r in records[1:]}
        assert names == {"outer", "inner"}
        # Corruption is detected, exactly like a ledger tail.
        from repro.service.ledger import TornRecordError

        with open(path, "ab") as f:
            f.write(b'{"kind":"span","name":"x"}\n')
        with pytest.raises(TornRecordError):
            read_trace_log(path)


# ---------------------------------------------------------------------------
# route coverage: every serving route yields a trace + correct labels


def _route_counts(dataset):
    series = obs.snapshot().get("service.answers_total", {}).get("series", [])
    return {
        s["labels"]["route"]: s["value"]
        for s in series
        if s["labels"]["dataset"] == dataset
    }


class TestRouteTraces:
    def _assert_traced(self, answers, *, route):
        for a in answers:
            assert a.route == route
            assert a.trace_id is not None
            spans = obs.get_trace(a.trace_id)
            assert spans is not None
            names = [s.name for s in spans]
            assert names[-1] == "session.ask"
            assert "service.answer" in names and "serve.hits" in names
        return spans

    def test_direct_route(self, tmp_path):
        obs.enable()
        sess = make_session(tmp_path)
        ds = sess.dataset("d", schema=small_schema(), data=poisson_data(small_schema()))
        ans = ds.ask_many([total()], eps=0.5, rng=1)
        spans = self._assert_traced(ans, route="direct")
        names = [s.name for s in spans]
        assert "plan.route" in names and "serve.measure" in names
        assert _route_counts("d") == {"direct": 1.0}

    def test_cold_then_accelerator_and_cache(self, tmp_path):
        obs.enable()
        sess = make_session(tmp_path)
        svc = sess.service
        svc.direct_miss_threshold = 0  # force the fitting path
        # age is wide enough that an every-other-value selection exceeds
        # the accelerator's per-row run limit (the cache-route case).
        s = Schema.from_spec({"age": 40, "sex": ["M", "F"]})
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        cold = ds.ask_many([marginal("age"), marginal("sex")], eps=1.0, rng=2)
        spans = self._assert_traced(cold, route="cold")
        names = [s_.name for s_ in spans]
        # The cold path runs SELECT + the accounted measurement inside
        # the same trace.
        for expected in (
            "plan.route",
            "serve.measure",
            "service.measure",
            "select.prepare",
            "select.fit",
            "accountant.charge",
            "measure.run_batch",
        ):
            assert expected in names, expected
        # Box-decomposable hit → accelerator; a scattered selection has
        # too many runs for a gather and stays on the cache route.
        hit = ds.ask_many([marginal("age")], eps=None)
        self._assert_traced(hit, route="accelerator")
        wq = ds.ask_many([A("age").isin(list(range(0, 40, 2)))])
        self._assert_traced(wq, route="cache")
        counts = _route_counts("d")
        assert counts["cold"] == 2.0
        assert counts["accelerator"] == 1.0
        assert counts["cache"] == 1.0
        # Free hits also land per-support counters under the serving key.
        support = obs.snapshot()["service.support_hits"]["series"]
        assert sum(s_["value"] for s_ in support) == 2.0

    def test_warm_route(self, tmp_path):
        obs.enable()
        s = small_schema()
        sess = make_session(tmp_path)
        svc = sess.service
        svc.direct_miss_threshold = 0
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        # Prepare the exact miss union first: the second ask routes warm.
        exprs = [prefix("age")]
        batch = ds.compile_many(exprs)
        svc.prepare(batch.to_workload_matrix())
        ans = ds.ask_many(exprs, eps=0.8, rng=3)
        self._assert_traced(ans, route="warm")
        assert _route_counts("d") == {"warm": 1.0}

    def test_single_query_hit_trace_and_gather_histogram(self):
        obs.enable()
        shape = (8, 4)
        n = 32
        svc = QueryService()
        svc.add_dataset("d", np.arange(n, dtype=float))
        svc._datasets["d"].reconstructions["k"] = Reconstruction(
            key="k",
            strategy=Kronecker([Identity(s) for s in shape]),
            x_hat=np.arange(n, dtype=float),
            eps=1.0,
        )
        row = np.zeros(shape[0])
        row[1:3] = 1.0
        q = Kronecker([Dense(row[None, :]), Ones(1, shape[1])])
        qa = svc.query("d", q)
        assert qa.route == "accelerator" and qa.trace_id is not None
        names = [s.name for s in obs.get_trace(qa.trace_id)]
        assert names == ["serve.hit", "service.query"]
        h = obs.snapshot()["accelerator.gather_ms"]["series"][0]
        assert h["count"] == 1
        assert _route_counts("d") == {"accelerator": 1.0}

    def test_trace_disabled_stamps_nothing(self, tmp_path):
        s = small_schema()
        sess = make_session(tmp_path)
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        ans = ds.ask_many([total()], eps=0.5, rng=1)
        assert ans[0].trace_id is None
        assert obs.snapshot() == {}

    def test_answers_bit_identical_with_obs_enabled(self, tmp_path):
        """Instrumentation must not perturb served values: the same seeds
        produce the same bits with observability on and off."""
        s = small_schema()
        x = poisson_data(s)
        sess_off = make_session(tmp_path / "off")
        a_off = sess_off.dataset("d", schema=s, data=x).ask_many(
            [marginal("age"), total()], eps=0.7, rng=11
        )
        obs.enable()
        sess_on = make_session(tmp_path / "on")
        a_on = sess_on.dataset("d", schema=s, data=x).ask_many(
            [marginal("age"), total()], eps=0.7, rng=11
        )
        for off, on in zip(a_off, a_on):
            assert np.array_equal(off.values, on.values)
            assert off.route == on.route


# ---------------------------------------------------------------------------
# ε-spend view


class TestSpendView:
    def _spend_traffic(self, acct):
        acct.register("a", 5.0)
        acct.register("b", 2.0)
        for i in range(7):
            acct.charge("a", 0.1 * (i + 1), stage=f"s{i}")
        acct.charge_parallel("b", [0.3, 0.7], stage="par")

    def test_replay_matches_recover_bit_for_bit(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=p)
        self._spend_traffic(acct)

        report = replay(p)
        recovered = PrivacyAccountant.recover(p)
        for name in ("a", "b"):
            assert report.spent(name) == recovered.spent(name)  # bit-equal
            assert report.datasets[name].cap == recovered.cap(name)
            assert report.datasets[name].remaining == recovered.remaining(name)
        assert report.datasets["a"].debits == 7
        assert report.datasets["b"].last_stage == "par"
        assert not report.torn
        # The timeline's running totals end at the final spend.
        cum = {}
        for ev in report.timeline:
            cum[ev.dataset] = ev.cumulative
        assert cum == {"a": recovered.spent("a"), "b": recovered.spent("b")}

    def test_replay_is_read_only_and_torn_aware(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=p)
        self._spend_traffic(acct)
        with open(p, "ab") as f:
            f.write(b'{"kind":"debit","dataset":"a","epsilon":9')
        size_before = os.path.getsize(p)
        report = replay(p)
        assert report.torn
        assert os.path.getsize(p) == size_before  # no truncation happened
        # recover() truncates — and agrees with the replay's totals.
        recovered = PrivacyAccountant.recover(p)
        assert report.spent("a") == recovered.spent("a")
        assert os.path.getsize(p) < size_before

    def test_cli_renders_and_reports_missing_file(self, tmp_path, capsys):
        p = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=p)
        self._spend_traffic(acct)
        assert spend_main([p]) == 0
        out = capsys.readouterr().out
        assert "ε-spend report" in out and "a" in out and "5" in out
        assert spend_main([p, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["datasets"]["a"]["spent"] == acct.spent("a")
        assert len(payload["timeline"]) == 8
        assert spend_main([str(tmp_path / "missing.wal")]) == 2
        assert "no ledger file" in capsys.readouterr().err

    def test_session_budget_report(self, tmp_path):
        sess = make_session(tmp_path, wal=True)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s), epsilon_cap=3.0)
        ds.ask_many([total()], eps=0.5, rng=1)
        report = sess.budget_report()
        acct = sess.service.accountant
        assert report.spent("d") == acct.spent("d")
        assert report.datasets["d"].cap == 3.0
        assert report.datasets["d"].remaining == acct.remaining("d")
        text = report.render()
        assert "d" in text and "remaining" in text
        # And the CLI view over the same WAL agrees exactly.
        assert replay(acct.wal_path).spent("d") == acct.spent("d")

    def test_budget_report_without_accountant_raises(self):
        sess = Session()
        with pytest.raises(ValueError, match="no accountant"):
            sess.budget_report()

    def test_report_from_memory_accountant(self):
        acct = PrivacyAccountant()
        self._spend_traffic(acct)
        from repro.obs.spend import report_from_accountant

        report = report_from_accountant(acct)
        assert report.spent("a") == acct.spent("a")
        assert report.source == "<memory>"


# ---------------------------------------------------------------------------
# structured events


class TestEvents:
    def test_emit_logs_and_counts(self, caplog):
        import logging

        obs.enable()
        from repro.obs.events import emit

        logger = logging.getLogger("repro.test.events")
        with caplog.at_level(logging.WARNING, logger="repro.test.events"):
            emit(logger, "registry.table_quarantined", key="k", reason="crc")
        assert len(caplog.records) == 1
        msg = caplog.records[0].getMessage()
        assert msg.startswith("registry.table_quarantined ")
        assert json.loads(msg.split(" ", 1)[1]) == {
            "key": "k", "reason": "crc",
        }
        events = obs.snapshot()["obs.events_total"]["series"]
        assert events[0]["labels"] == {
            "event": "registry.table_quarantined"
        }
        assert events[0]["value"] == 1.0


# ---------------------------------------------------------------------------
# benchmark scenario rides tier-1


def test_bench_observability_scenario_quick():
    """Quick-mode benchmark run on tier-1: the disabled-path tax must be
    within bounds on the committed record, and live traces/counters must
    be structurally complete at smoke size."""
    import sys

    bench_dir = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        from bench_perf_regression import bench_observability
    finally:
        sys.path.remove(bench_dir)
    ob = bench_observability(shape=(16, 16), batch=8, rounds=3)
    assert ob["trace_complete"]
    assert ob["answers_counter_correct"]
    # Live smoke bound is generous (tiny batches amplify timer noise);
    # the strict < 3% figure is asserted on the committed full-size run.
    assert ob["overhead_disabled_pct"] < 25.0

    with open(os.path.join(bench_dir, os.pardir, "BENCH_PERF.json")) as f:
        recorded = json.load(f)
    rec = recorded["observability"]
    assert rec["overhead_disabled_pct"] < 3.0
    assert rec["trace_complete"] and rec["answers_counter_correct"]
