"""Tests for the predicate language and vectorization (Definition 4)."""

import numpy as np
import pytest

from repro.linalg import Dense, Identity, Ones, Prefix
from repro.workload.predicates import (
    Equals,
    InSet,
    Lambda,
    Range,
    TruePredicate,
    all_range_predicates,
    identity_predicates,
    prefix_predicates,
    total_predicates,
    vectorize,
    vectorize_set,
)


class TestPredicates:
    def test_true_matches_everything(self):
        assert np.allclose(TruePredicate().mask(4), np.ones(4))

    def test_equals(self):
        assert np.allclose(Equals(2).mask(4), [0, 0, 1, 0])

    def test_equals_out_of_domain(self):
        with pytest.raises(ValueError):
            Equals(5).mask(4)

    def test_inset(self):
        assert np.allclose(InSet([0, 3]).mask(4), [1, 0, 0, 1])

    def test_inset_deduplicates(self):
        assert InSet([1, 1, 2]).values == [1, 2]

    def test_range_inclusive(self):
        assert np.allclose(Range(1, 2).mask(4), [0, 1, 1, 0])

    def test_range_empty_rejected(self):
        with pytest.raises(ValueError):
            Range(3, 1)

    def test_range_out_of_domain(self):
        with pytest.raises(ValueError):
            Range(1, 5).mask(4)

    def test_lambda(self):
        even = Lambda(lambda v: v % 2 == 0, "even")
        assert np.allclose(even.mask(5), [1, 0, 1, 0, 1])

    def test_callable_protocol(self):
        assert Equals(1)(1, 4)
        assert not Equals(1)(2, 4)


class TestVectorize:
    def test_vectorize_returns_indicator(self):
        assert np.allclose(vectorize(Range(0, 1), 3), [1, 1, 0])

    def test_vectorize_set_recognizes_identity(self):
        M = vectorize_set(identity_predicates(5), 5)
        assert isinstance(M, Identity)

    def test_vectorize_set_recognizes_total(self):
        M = vectorize_set(total_predicates(), 5)
        assert isinstance(M, Ones)
        assert M.shape == (1, 5)

    def test_vectorize_set_recognizes_prefix(self):
        M = vectorize_set(prefix_predicates(5), 5)
        assert isinstance(M, Prefix)

    def test_vectorize_set_dense_fallback(self):
        M = vectorize_set([Equals(0), Range(1, 2)], 4)
        assert isinstance(M, Dense)
        assert np.allclose(M.dense(), [[1, 0, 0, 0], [0, 1, 1, 0]])

    def test_all_range_predicates_count(self):
        assert len(all_range_predicates(5)) == 15

    def test_all_range_matches_matrix(self):
        from repro.linalg import AllRange

        M = vectorize_set(all_range_predicates(4), 4)
        assert np.allclose(M.dense(), AllRange(4).dense())


class TestBooleanAlgebra:
    """The predicate combinators behind the declarative expression API."""

    def test_not_complements_mask(self):
        from repro.workload.predicates import Not

        assert np.allclose((~Equals(1)).mask(4), [1, 0, 1, 1])
        assert isinstance(~Equals(1), Not)

    def test_double_negation_mask(self):
        assert np.allclose((~~Range(1, 2)).mask(4), Range(1, 2).mask(4))

    def test_and_is_mask_product(self):
        p = Range(0, 2) & Range(2, 3)
        assert np.allclose(p.mask(4), [0, 0, 1, 0])

    def test_or_is_mask_maximum(self):
        p = Equals(0) | Range(2, 3)
        assert np.allclose(p.mask(4), [1, 0, 1, 1])

    def test_compound_vectorizes_like_primitive(self):
        p = ~(Equals(0) | Equals(3))
        assert np.allclose(vectorize(p, 4), [0, 1, 1, 0])

    def test_empty_combinators_rejected(self):
        from repro.workload.predicates import And, Or

        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_full_domain_single_predicate_collapses_to_total(self):
        """A lone predicate covering the whole domain is the Total set."""
        M = vectorize_set([Range(0, 4)], 5)
        assert isinstance(M, Ones) and M.shape == (1, 5)
        M2 = vectorize_set([InSet(range(5))], 5)
        assert isinstance(M2, Ones)
        # A partial range still vectorizes densely.
        assert not isinstance(vectorize_set([Range(0, 3)], 5), Ones)
