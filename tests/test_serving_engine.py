"""Tests for the batched serving engine (PR 2): batched MEASURE,
multi-RHS RECONSTRUCT, the structured normal-equation solvers, and the
batched-vs-looped determinism contract."""

import numpy as np
import pytest

from repro.core import HDMM, expected_error, rootmse
from repro.core.measure import laplace_measure, laplace_measure_batch, laplace_noise
from repro.core.reconstruct import (
    DENSE_PINV_LIMIT,
    answer_workload,
    has_structured_pinv,
    least_squares,
    resolves_to_direct,
    resolves_to_pinv,
)
from repro.core.solvers import (
    GramRecycleState,
    cg_gram_solve,
    export_gram_solver_state,
    gram_recycle_state,
    restore_gram_solver_state,
    union_gram_inverse,
    union_gram_preconditioner,
    validate_maxiter,
    validate_tolerance,
)
from repro.linalg import (
    Dense,
    Diagonal,
    Identity,
    Kronecker,
    MarginalsStrategy,
    Prefix,
    VStack,
    Weighted,
)
from repro.optimize import PIdentity
from repro.optimize.parallel import spawn_seeds
from repro import workload


def _union_strategy(rng):
    """A 2-block union-of-Kronecker strategy (the OPT_+ output shape)."""
    return VStack(
        [
            Weighted(
                Kronecker([PIdentity(rng.random((2, 6))), Identity(5)]), 0.5
            ),
            Weighted(
                Kronecker([Identity(6), PIdentity(rng.random((2, 5)))]), 0.5
            ),
        ]
    )


def _multiblock_strategy(rng, L, d1=6, d2=5):
    """An L-block union of Kronecker products (opt_union(groups=L) shape)."""
    return VStack(
        [
            Weighted(
                Kronecker(
                    [PIdentity(rng.random((2, d1))), PIdentity(rng.random((2, d2)))]
                ),
                1.0 / L,
            )
            for _ in range(L)
        ]
    )


class TestBatchedNoise:
    def test_batched_noise_bit_identical_to_spawned_loop(self):
        scales = np.array([0.5, 2.0, 0.0, 1.0])
        batch = laplace_noise(scales, 16, rng=42)
        seeds = spawn_seeds(42, 4)
        for j in range(4):
            expected = laplace_noise(float(scales[j]), 16, rng=seeds[j])
            assert np.array_equal(batch[:, j], expected)

    def test_zero_scale_column_is_zero(self):
        batch = laplace_noise(np.array([0.0, 1.0]), 8, rng=0)
        assert np.all(batch[:, 0] == 0)
        assert np.any(batch[:, 1] != 0)

    def test_negative_scale_rejected_in_batch(self):
        with pytest.raises(ValueError):
            laplace_noise(np.array([1.0, -0.5]), 8)

    def test_scalar_path_unchanged(self):
        assert np.array_equal(laplace_noise(1.0, 10, 7), laplace_noise(1.0, 10, 7))


class TestBatchedMeasure:
    def test_shared_vector_eps_grid_bit_identical(self, rng):
        A = Prefix(12)
        x = rng.poisson(20, 12).astype(float)
        eps = np.array([0.1, 1.0, 10.0])
        Y = laplace_measure_batch(A, x, eps, rng=5)
        seeds = spawn_seeds(5, 3)
        for j in range(3):
            assert np.array_equal(
                Y[:, j], laplace_measure(A, x, float(eps[j]), rng=seeds[j])
            )

    def test_paired_data_vectors(self, rng):
        A = Prefix(8)
        X = rng.poisson(30, (8, 4)).astype(float)
        Y = laplace_measure_batch(A, X, 1.0, rng=3, columnwise=True)
        seeds = spawn_seeds(3, 4)
        for j in range(4):
            xj = np.ascontiguousarray(X[:, j])
            assert np.array_equal(Y[:, j], laplace_measure(A, xj, 1.0, rng=seeds[j]))

    def test_trials_argument(self, rng):
        A = Identity(6)
        Y = laplace_measure_batch(A, np.ones(6), 2.0, rng=0, trials=7)
        assert Y.shape == (6, 7)

    def test_inconsistent_trial_counts_rejected(self, rng):
        A = Identity(6)
        with pytest.raises(ValueError, match="inconsistent"):
            laplace_measure_batch(
                A, rng.random((6, 3)), np.array([1.0, 2.0]), rng=0
            )
        with pytest.raises(ValueError, match="inconsistent"):
            laplace_measure_batch(A, np.ones(6), np.array([1.0, 2.0]), trials=3)

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            laplace_measure_batch(Identity(4), np.zeros(4), np.array([1.0, -1.0]))


class TestSolverAgreement:
    """pinv, LSMR, CG, and the union direct solver must agree on x̄."""

    def test_kronecker(self, rng):
        A = Kronecker([PIdentity(rng.random((2, 5))), PIdentity(rng.random((2, 4)))])
        y = rng.standard_normal(A.shape[0])
        x_pinv = least_squares(A, y, method="pinv")
        x_lsmr = least_squares(A, y, method="lsmr")
        x_cg = least_squares(A, y, method="cg")
        assert np.allclose(x_pinv, x_lsmr, atol=1e-7)
        assert np.allclose(x_pinv, x_cg, atol=1e-7)

    def test_marginals(self, rng):
        A = MarginalsStrategy((3, 2, 4), rng.random(8) + 0.05)
        y = rng.standard_normal(A.shape[0])
        x_pinv = least_squares(A, y, method="pinv")
        x_lsmr = least_squares(A, y, method="lsmr")
        x_cg = least_squares(A, y, method="cg")
        assert np.allclose(x_pinv, x_lsmr, atol=1e-6)
        assert np.allclose(x_pinv, x_cg, atol=1e-6)

    def test_weighted(self, rng):
        A = Weighted(PIdentity(rng.random((2, 6))), 0.25)
        y = rng.standard_normal(A.shape[0])
        assert np.allclose(
            least_squares(A, y, method="pinv"),
            least_squares(A, y, method="lsmr"),
            atol=1e-7,
        )

    def test_union(self, rng):
        A = _union_strategy(rng)
        y = rng.standard_normal(A.shape[0])
        x_auto = least_squares(A, y)  # two-term structured Gram inverse
        x_lsmr = least_squares(A, y, method="lsmr")
        x_cg = least_squares(A, y, method="cg")
        assert np.allclose(x_auto, x_lsmr, atol=1e-6)
        assert np.allclose(x_auto, x_cg, atol=1e-6)

    def test_multi_rhs_matches_loop(self, rng):
        A = _union_strategy(rng)
        Y = rng.standard_normal((A.shape[0], 5))
        X = least_squares(A, Y)
        for j in range(5):
            xj = least_squares(A, np.ascontiguousarray(Y[:, j]))
            assert np.allclose(X[:, j], xj, atol=1e-9)

    def test_multi_rhs_columnwise_bit_identical(self, rng):
        A = _union_strategy(rng)
        Y = rng.standard_normal((A.shape[0], 4))
        X = least_squares(A, Y, columnwise=True)
        for j in range(4):
            xj = least_squares(A, np.ascontiguousarray(Y[:, j]))
            assert np.array_equal(X[:, j], xj)

    def test_cg_columnwise_bit_identical_per_column(self, rng):
        A = _union_strategy(rng)
        G = A.gram()
        B = A.rmatmat(rng.standard_normal((A.shape[0], 6)))
        batch = cg_gram_solve(G, B, columnwise=True)
        for j in range(6):
            single = cg_gram_solve(G, np.ascontiguousarray(B[:, j : j + 1]),
                                   columnwise=True)
            assert np.array_equal(batch.x[:, j], single.x[:, 0])
            assert batch.iterations[j] == single.iterations[0]

    def test_warm_start_agrees_with_cold(self, rng):
        A = _union_strategy(rng)
        y = rng.standard_normal(A.shape[0])
        cold = least_squares(A, y, method="cg")
        warm = least_squares(A, y, method="cg", x0=cold)
        assert np.allclose(cold, warm, atol=1e-8)


class TestUnionGramInverse:
    def test_two_block_inverse_is_exact(self, rng):
        A = _union_strategy(rng)
        op = union_gram_inverse(A)
        assert op is not None
        G = A.gram().dense()
        assert np.allclose(op.dense() @ G, np.eye(A.shape[1]), atol=1e-8)

    def test_single_block_inverse(self, rng):
        A = VStack([Weighted(Kronecker([PIdentity(rng.random((2, 4))),
                                        PIdentity(rng.random((2, 3)))]), 1.0)])
        op = union_gram_inverse(A)
        assert op is not None
        assert np.allclose(op.dense() @ A.gram().dense(), np.eye(12), atol=1e-8)

    def test_unavailable_for_three_blocks(self, rng):
        blocks = [
            Weighted(Kronecker([PIdentity(rng.random((1, 4))), Identity(3)]), 0.3)
            for _ in range(3)
        ]
        assert union_gram_inverse(VStack(blocks)) is None

    def test_unavailable_for_non_vstack(self, rng):
        assert union_gram_inverse(PIdentity(rng.random((2, 5)))) is None

    def test_cached_on_instance(self, rng):
        A = _union_strategy(rng)
        assert union_gram_inverse(A) is union_gram_inverse(A)


class TestMultiblockGramSolver:
    """Tentpole: preconditioned block-CG + subspace recycling for L ≥ 3."""

    @pytest.mark.parametrize("L", [3, 4, 5])
    def test_union_solve_matches_dense_pinv(self, rng, L):
        A = _multiblock_strategy(rng, L)
        Y = rng.standard_normal((A.shape[0], 4))
        X = least_squares(A, Y)  # auto → preconditioned CG
        X_ref = np.linalg.pinv(A.dense()) @ Y
        scale = max(1.0, np.abs(X_ref).max())
        assert np.max(np.abs(X - X_ref)) / scale <= 1e-8

    @pytest.mark.parametrize("L", [3, 4, 5])
    def test_preconditioner_inverts_dominant_pair(self, rng, L):
        A = _multiblock_strategy(rng, L)
        M = union_gram_preconditioner(A)
        assert M is not None
        state = A.cache_get("union_gram_precond_state")
        i, j = state["blocks"]
        pair = VStack([A.blocks[i], A.blocks[j]])
        G_pair = pair.gram().dense()
        n = A.shape[1]
        assert np.allclose(M.dense() @ G_pair, np.eye(n), atol=1e-8)

    def test_preconditioner_unavailable_below_three_blocks(self, rng):
        assert union_gram_preconditioner(_union_strategy(rng)) is None
        assert union_gram_preconditioner(PIdentity(rng.random((2, 5)))) is None

    def test_preconditioner_cached_on_instance(self, rng):
        A = _multiblock_strategy(rng, 3)
        assert union_gram_preconditioner(A) is union_gram_preconditioner(A)

    def test_incompatible_top_trace_block_does_not_starve_pairs(self, rng):
        """A dominant block whose factor shapes match nothing else must
        not consume the pair budget: the compatible lower-trace pair
        still yields a preconditioner."""
        odd = Weighted(Kronecker([PIdentity(rng.random((2, 30)))]), 5.0)
        compatible = [
            Weighted(
                Kronecker(
                    [PIdentity(rng.random((2, 6))), PIdentity(rng.random((2, 5)))]
                ),
                0.5,
            )
            for _ in range(3)
        ]
        A = VStack([odd] + compatible)
        M = union_gram_preconditioner(A)
        assert M is not None
        state = A.cache_get("union_gram_precond_state")
        assert 0 not in state["blocks"]  # the odd block cannot pair

    def test_preconditioned_vs_plain_cg_answers_agree(self, rng):
        A = _multiblock_strategy(rng, 4)
        Y = rng.standard_normal((A.shape[0], 3))
        X_auto = least_squares(A, Y)  # preconditioned + recycled
        X_cg = least_squares(A, Y, method="cg")  # plain CG
        X_lsmr = least_squares(A, Y, method="lsmr")
        assert np.allclose(X_auto, X_cg, atol=1e-7)
        assert np.allclose(X_auto, X_lsmr, atol=1e-7)

    def test_preconditioning_reduces_iterations(self, rng):
        A = _multiblock_strategy(rng, 4)
        G = A.gram()
        B = A.rmatmat(rng.standard_normal((A.shape[0], 8)))
        plain = cg_gram_solve(G, B)
        pre = cg_gram_solve(G, B, preconditioner=union_gram_preconditioner(A))
        assert plain.converged.all() and pre.converged.all()
        assert pre.iterations.sum() < plain.iterations.sum()

    def test_recycling_reduces_iterations_across_solves(self, rng):
        A = _multiblock_strategy(rng, 4)
        G = A.gram()
        M = union_gram_preconditioner(A)
        B1 = A.rmatmat(rng.standard_normal((A.shape[0], 6)))
        B2 = A.rmatmat(rng.standard_normal((A.shape[0], 6)))
        state = GramRecycleState()
        cg_gram_solve(G, B1, preconditioner=M, recycle=state)
        assert state.size > 0
        cold = cg_gram_solve(G, B2, preconditioner=M)
        warm = cg_gram_solve(G, B2, preconditioner=M, recycle=state)
        assert warm.converged.all()
        assert warm.iterations.sum() < cold.iterations.sum()
        # Deflation must not cost accuracy.
        ref = np.linalg.solve(G.dense(), B2)
        assert np.allclose(warm.x, ref, atol=1e-8)

    def test_recycle_state_cached_on_strategy(self, rng):
        A = _multiblock_strategy(rng, 3)
        assert gram_recycle_state(A) is gram_recycle_state(A)
        Y = rng.standard_normal((A.shape[0], 2))
        least_squares(A, Y)  # auto path populates the cached state
        assert gram_recycle_state(A).size > 0

    def test_recycling_determinism_exact_sweep(self, rng):
        """ISSUE contract: same seeds ⇒ bit-identical answers with
        exact=True, including the recycled L ≥ 3 path — two identical
        fresh runs (fresh strategy instances, fresh recycle bases) must
        agree to the last bit."""
        W = workload.range_total_union(6)
        eps = np.array([0.5, 1.0, 2.0])
        x = np.arange(36, dtype=float)

        def fresh_run():
            r = np.random.default_rng(7)
            A = _multiblock_strategy(r, 4, d1=6, d2=6)
            mech = HDMM(restarts=1, rng=0)
            mech.workload, mech.strategy = W, A
            return mech.run_batch(x, eps, trials=2, rng=13, exact=True)

        assert np.array_equal(fresh_run(), fresh_run())

    def test_export_restore_precond_state(self, rng):
        A = _multiblock_strategy(rng, 4)
        state = export_gram_solver_state(A)
        assert "precond_factors" in state and "precond_blocks" in state
        fresh = np.random.default_rng(12345)
        A2 = _multiblock_strategy(fresh, 4)  # same arrays, fresh caches
        restore_gram_solver_state(A2, state)
        M2 = A2.cache_get("union_gram_precond")
        assert M2 is not None and not isinstance(M2, str)
        M1 = union_gram_preconditioner(A)
        assert np.allclose(M1.dense(), M2.dense())

    def test_legacy_unavailable_state_does_not_disable_precond(self, rng):
        """Registry entries persisted before the preconditioner existed
        carry a bare {'unavailable': True}; restoring one onto an L ≥ 3
        strategy must leave the dominant-pair probe free to run."""
        A = _multiblock_strategy(rng, 3)
        restore_gram_solver_state(A, {"unavailable": True})  # legacy form
        assert A.cache_get("union_gram_inverse") == "unavailable"
        assert union_gram_preconditioner(A) is not None

    def test_failed_precond_probe_roundtrips_as_unavailable(self, rng):
        """A probe that genuinely ran and failed is persisted so the
        reloaded strategy skips re-probing."""
        A = VStack(
            [Weighted(Kronecker([PIdentity(rng.random((1, 2000)))]), 1.0)]
            * 3
        )  # factor too large for KRON_FACTOR_LIMIT — probe must fail
        state = export_gram_solver_state(A)
        assert state == {"unavailable": True, "precond_probed": True}
        A2 = VStack(A.blocks)
        restore_gram_solver_state(A2, state)
        assert A2.cache_get("union_gram_precond") == "unavailable"

    def test_cg_preconditioner_shape_validated(self, rng):
        A = _union_strategy(rng)
        G = A.gram()
        B = A.rmatmat(rng.standard_normal((A.shape[0], 2)))
        with pytest.raises(ValueError, match="preconditioner"):
            cg_gram_solve(G, B, preconditioner=Identity(G.shape[0] + 1))


class TestValidationSatellites:
    def test_pinv_on_vstack_raises(self, rng):
        A = _union_strategy(rng)
        with pytest.raises(ValueError, match="pinv.*union|union.*pinv"):
            least_squares(A, np.zeros(A.shape[0]), method="pinv")

    def test_dense_pinv_limit_constant(self):
        assert DENSE_PINV_LIMIT == 4096
        big = Dense(np.eye(8))
        assert has_structured_pinv(big)
        assert not has_structured_pinv(big, dense_pinv_limit=4)

    def test_dense_pinv_limit_override_in_solver(self, rng):
        A = Dense(rng.standard_normal((10, 8)))
        y = rng.standard_normal(10)
        ref = least_squares(A, y, method="pinv")
        # Below the per-call limit the auto path must fall to the
        # iterative solver and still agree.
        via_cg = least_squares(A, y, dense_pinv_limit=4)
        assert np.allclose(ref, via_cg, atol=1e-7)

    def test_dense_pinv_limit_validation(self):
        with pytest.raises(ValueError):
            has_structured_pinv(Identity(4), dense_pinv_limit=-1)

    def test_maxiter_validation(self, rng):
        A = Identity(4)
        for bad in (0, -3, 2.5, True):
            with pytest.raises(ValueError):
                least_squares(A, np.zeros(4), method="cg", maxiter=bad)
        assert validate_maxiter(None) is None
        assert validate_maxiter(10) == 10

    def test_tolerance_validation(self, rng):
        A = Identity(4)
        for kw in ("atol", "btol", "rtol"):
            with pytest.raises(ValueError):
                least_squares(A, np.zeros(4), **{kw: -1e-3})
        with pytest.raises(ValueError):
            validate_tolerance("rtol", float("nan"))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            least_squares(Identity(4), np.zeros(4), method="bogus")

    def test_x0_shape_validation(self, rng):
        A = Identity(4)
        with pytest.raises(ValueError):
            least_squares(A, np.zeros(4), method="cg", x0=np.zeros(5))

    def test_resolves_helpers(self, rng):
        A = _union_strategy(rng)
        assert not resolves_to_pinv(A)
        assert resolves_to_direct(A)  # two-term direct solver
        assert resolves_to_pinv(Identity(4))


class TestRunBatch:
    @pytest.fixture
    def fitted_union(self, rng):
        W = workload.range_total_union(8)
        mech = HDMM(restarts=1, rng=0)
        from repro.optimize import opt_union

        res = opt_union(W, rng=0)
        mech.workload, mech.strategy, mech.result = W, res.strategy, res
        return mech

    def test_exact_sweep_bit_identical_to_loop(self, fitted_union, rng):
        mech = fitted_union
        x = rng.poisson(25, mech.workload.shape[1]).astype(float)
        eps = np.array([0.5, 1.0, 2.0])
        trials = 3
        T = eps.size * trials
        seeds = spawn_seeds(11, T)
        loop = np.stack(
            [mech.run(x, eps[j // trials], rng=seeds[j]) for j in range(T)]
        )
        batch = mech.run_batch(
            x, eps, trials=trials, rng=11, exact=True, warm_start=False
        )
        assert batch.shape == (3, 3, mech.workload.shape[0])
        assert np.array_equal(batch.reshape(T, -1), loop)

    def test_fast_sweep_matches_loop_to_tolerance(self, fitted_union, rng):
        mech = fitted_union
        x = rng.poisson(25, mech.workload.shape[1]).astype(float)
        eps = np.array([0.5, 2.0])
        seeds = spawn_seeds(4, 4)
        loop = np.stack([mech.run(x, eps[j // 2], rng=seeds[j]) for j in range(4)])
        batch = mech.run_batch(x, eps, trials=2, rng=4)
        assert np.allclose(batch.reshape(4, -1), loop, atol=1e-8)

    def test_return_data_vector_shapes(self, fitted_union, rng):
        mech = fitted_union
        x = rng.poisson(25, mech.workload.shape[1]).astype(float)
        answers, x_hat = mech.run_batch(
            x, [1.0, 2.0], trials=2, rng=0, return_data_vector=True
        )
        assert answers.shape == (2, 2, mech.workload.shape[0])
        assert x_hat.shape == (2, 2, mech.workload.shape[1])

    def test_paired_mode(self, fitted_union, rng):
        mech = fitted_union
        n = mech.workload.shape[1]
        X = rng.poisson(25, (n, 3)).astype(float)
        answers = mech.run_batch(X, 1.0, rng=2, exact=True)
        assert answers.shape == (3, mech.workload.shape[0])
        seeds = spawn_seeds(2, 3)
        for j in range(3):
            xj = np.ascontiguousarray(X[:, j])
            assert np.array_equal(answers[j], mech.run(xj, 1.0, rng=seeds[j]))

    def test_paired_mode_rejects_trials(self, fitted_union, rng):
        mech = fitted_union
        X = rng.random((mech.workload.shape[1], 2))
        with pytest.raises(ValueError, match="trials"):
            mech.run_batch(X, 1.0, trials=3)

    def test_structured_pinv_strategy_sweep(self, rng):
        mech = HDMM(restarts=1, rng=0).fit(workload.prefix_1d(16))
        x = rng.poisson(40, 16).astype(float)
        eps = np.array([0.5, 1.0])
        batch = mech.run_batch(x, eps, trials=2, rng=9, exact=True)
        seeds = spawn_seeds(9, 4)
        loop = np.stack([mech.run(x, eps[j // 2], rng=seeds[j]) for j in range(4)])
        assert np.array_equal(batch.reshape(4, -1), loop)

    def test_marginals_strategy_sweep(self, rng):
        from repro.domain import Domain

        dom = Domain(["a", "b", "c"], [3, 3, 3])
        mech = HDMM(restarts=1, rng=0).fit(workload.up_to_k_marginals(dom, 2))
        x = rng.poisson(15, 27).astype(float)
        batch, x_hat = mech.run_batch(
            x, [1.0], trials=3, rng=5, exact=True, return_data_vector=True
        )
        seeds = spawn_seeds(5, 3)
        loop = np.stack([mech.run(x, 1.0, rng=seeds[j]) for j in range(3)])
        assert np.array_equal(batch.reshape(3, -1), loop)

    def test_validation(self, fitted_union):
        x = np.zeros(fitted_union.workload.shape[1])
        with pytest.raises(ValueError):
            fitted_union.run_batch(x, eps=-1.0)
        with pytest.raises(ValueError):
            fitted_union.run_batch(x, eps=1.0, trials=0)
        with pytest.raises(RuntimeError):
            HDMM().run_batch(x, eps=1.0)

    def test_warm_start_agrees_with_cold_sweep(self, fitted_union, rng):
        mech = fitted_union
        x = rng.poisson(25, mech.workload.shape[1]).astype(float)
        eps = np.array([0.25, 0.5, 1.0])
        warm = mech.run_batch(x, eps, trials=2, rng=1, method="cg",
                              warm_start=True)
        cold = mech.run_batch(x, eps, trials=2, rng=1, method="cg",
                              warm_start=False)
        assert np.allclose(warm, cold, atol=1e-6)


class TestVectorizedExpectedError:
    def test_grid_matches_scalars(self):
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        grid = np.array([0.1, 1.0, 4.0])
        vec = mech.expected_error(grid)
        assert vec.shape == (3,)
        for e, v in zip(grid, vec):
            assert np.isclose(v, mech.expected_error(float(e)))
        assert isinstance(mech.expected_error(1.0), float)

    def test_rootmse_grid(self):
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        grid = np.array([0.5, 2.0])
        assert np.allclose(
            mech.expected_rootmse(grid),
            [mech.expected_rootmse(0.5), mech.expected_rootmse(2.0)],
        )

    def test_module_level_functions(self, rng):
        W = workload.prefix_1d(8)
        A = Identity(8)
        grid = np.array([1.0, 2.0])
        assert np.allclose(
            expected_error(W, A, grid),
            [expected_error(W, A, 1.0), expected_error(W, A, 2.0)],
        )
        assert rootmse(W, A, grid).shape == (2,)

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValueError):
            expected_error(Prefix(4), Identity(4), np.array([1.0, 0.0]))


class TestDiagonal:
    def test_roundtrip(self, rng):
        d = rng.random(6) + 0.5
        D = Diagonal(d)
        x = rng.standard_normal(6)
        assert np.allclose(D.matvec(x), d * x)
        assert np.allclose(D.pinv().matvec(D.matvec(x)), x)
        assert np.allclose(D.dense(), np.diag(d))
        assert np.isclose(D.sensitivity(), np.abs(d).max())

    def test_pinv_with_zeros(self):
        D = Diagonal(np.array([2.0, 0.0]))
        assert np.allclose(D.pinv().dense(), np.diag([0.5, 0.0]))

    def test_matmat_batched(self, rng):
        d = rng.random(4)
        X = rng.standard_normal((4, 3))
        assert np.allclose(Diagonal(d).matmat(X), d[:, None] * X)


class TestAnswerWorkloadBatched:
    def test_matches_column_loop(self, rng):
        W = workload.prefix_identity(4)
        X = rng.standard_normal((16, 5))
        batched = answer_workload(W, X)
        columnwise = answer_workload(W, X, columnwise=True)
        for j in range(5):
            ref = W.matvec(np.ascontiguousarray(X[:, j]))
            assert np.allclose(batched[:, j], ref, atol=1e-12)
            assert np.array_equal(columnwise[:, j], ref)
