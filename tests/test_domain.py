"""Tests for the relational domain model."""

import pytest

from repro.domain import Domain


class TestConstruction:
    def test_basic(self):
        d = Domain(["a", "b"], [3, 4])
        assert d.attributes == ("a", "b")
        assert d.sizes == (3, 4)

    def test_fromdict_preserves_order(self):
        d = Domain.fromdict({"x": 2, "y": 5, "z": 3})
        assert d.attributes == ("x", "y", "z")
        assert d.sizes == (2, 5, 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Domain(["a", "b"], [3])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Domain(["a", "a"], [3, 4])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            Domain(["a"], [0])
        with pytest.raises(ValueError):
            Domain(["a"], [-2])


class TestQueries:
    def test_total_size(self):
        assert Domain(["a", "b", "c"], [3, 4, 5]).size() == 60

    def test_attribute_size(self):
        d = Domain(["a", "b"], [3, 4])
        assert d.size("b") == 4
        assert d["a"] == 3

    def test_index(self):
        d = Domain(["a", "b", "c"], [3, 4, 5])
        assert d.index("c") == 2

    def test_contains(self):
        d = Domain(["a"], [3])
        assert "a" in d
        assert "z" not in d

    def test_iter_and_len(self):
        d = Domain(["a", "b"], [3, 4])
        assert list(d) == ["a", "b"]
        assert len(d) == 2

    def test_shape(self):
        assert Domain(["a", "b"], [3, 4]).shape() == (3, 4)


class TestProjection:
    def test_project_keeps_order(self):
        d = Domain(["a", "b", "c"], [3, 4, 5])
        p = d.project(["c", "a"])
        assert p.attributes == ("a", "c")
        assert p.sizes == (3, 5)

    def test_project_unknown_raises(self):
        with pytest.raises(KeyError):
            Domain(["a"], [3]).project(["q"])

    def test_marginalize(self):
        d = Domain(["a", "b", "c"], [3, 4, 5])
        m = d.marginalize(["b"])
        assert m.attributes == ("a", "c")

    def test_merge(self):
        d1 = Domain(["a", "b"], [3, 4])
        d2 = Domain(["b", "c"], [4, 5])
        merged = d1.merge(d2)
        assert merged.attributes == ("a", "b", "c")

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            Domain(["a"], [3]).merge(Domain(["a"], [4]))


class TestEquality:
    def test_eq_and_hash(self):
        d1 = Domain(["a"], [3])
        d2 = Domain(["a"], [3])
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_neq_different_sizes(self):
        assert Domain(["a"], [3]) != Domain(["a"], [4])

    def test_neq_non_domain(self):
        assert Domain(["a"], [3]) != "not a domain"
