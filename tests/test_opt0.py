"""Tests for OPT_0 and p-Identity strategies (Section 5.2)."""

import numpy as np
import pytest

from repro.linalg import AllRange, Prefix
from repro.optimize import PIdentity, opt_0, pidentity_loss_and_grad


class TestPIdentity:
    def test_shape(self):
        A = PIdentity(np.ones((3, 8)))
        assert A.shape == (11, 8)

    def test_sensitivity_exactly_one(self, rng):
        A = PIdentity(rng.random((4, 10)))
        D = A.dense()
        assert np.allclose(np.abs(D).sum(axis=0), 1.0)
        assert A.sensitivity() == 1.0

    def test_example8_structure(self):
        """Paper Example 8: p=2, N=3 illustration of A(Θ)."""
        theta = np.array([[1.0, 2.0, 3.0], [1.0, 1.0, 1.0]])
        A = PIdentity(theta).dense()
        expected = np.array(
            [
                [1 / 3, 0, 0],
                [0, 0.25, 0],
                [0, 0, 0.2],
                [1 / 3, 0.5, 0.6],
                [1 / 3, 0.25, 0.2],
            ]
        )
        assert np.allclose(A, expected)

    def test_matvec_rmatvec(self, rng):
        A = PIdentity(rng.random((3, 6)))
        D = A.dense()
        x = rng.standard_normal(6)
        y = rng.standard_normal(9)
        assert np.allclose(A.matvec(x), D @ x)
        assert np.allclose(A.rmatvec(y), D.T @ y)

    def test_gram_and_inverse(self, rng):
        A = PIdentity(rng.random((3, 6)))
        D = A.dense()
        assert np.allclose(A.gram().dense(), D.T @ D)
        assert np.allclose(A.gram_inverse(), np.linalg.inv(D.T @ D))

    def test_pinv(self, rng):
        A = PIdentity(rng.random((3, 6)))
        y = rng.standard_normal(9)
        assert np.allclose(A.pinv().matvec(y), np.linalg.pinv(A.dense()) @ y)

    def test_supports_any_workload(self, rng):
        """A(Θ) contains a scaled identity, so WA⁺A = W for any W."""
        A = PIdentity(rng.random((2, 5)))
        D = A.dense()
        W = rng.standard_normal((7, 5))
        assert np.allclose(W @ np.linalg.pinv(D) @ D, W)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            PIdentity(np.array([[-1.0, 0.0]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            PIdentity(np.ones(4))


class TestLossAndGrad:
    def test_loss_matches_direct(self, rng):
        B = rng.random((3, 8)) + 0.1
        V = AllRange(8).gram().dense()
        loss, _ = pidentity_loss_and_grad(B, V)
        D = PIdentity(B).dense()
        assert np.isclose(loss, np.trace(np.linalg.inv(D.T @ D) @ V))

    @pytest.mark.parametrize("p,n", [(1, 5), (3, 8), (6, 6)])
    def test_gradient_matches_finite_differences(self, p, n, rng):
        B = rng.random((p, n)) + 0.1
        V = Prefix(n).gram().dense()
        _, grad = pidentity_loss_and_grad(B, V)
        h = 1e-6
        for _ in range(5):
            k, l = rng.integers(p), rng.integers(n)
            Bp, Bm = B.copy(), B.copy()
            Bp[k, l] += h
            Bm[k, l] -= h
            fd = (
                pidentity_loss_and_grad(Bp, V)[0]
                - pidentity_loss_and_grad(Bm, V)[0]
            ) / (2 * h)
            assert np.isclose(grad[k, l], fd, rtol=1e-4)

    def test_nonfinite_parameters_safe(self):
        V = np.eye(4)
        loss, grad = pidentity_loss_and_grad(np.full((2, 4), np.inf), V)
        assert loss == np.inf
        assert np.all(grad == 0)

    def test_huge_parameters_safe(self):
        V = np.eye(4)
        loss, _ = pidentity_loss_and_grad(np.full((2, 4), 1e40), V)
        assert loss == np.inf


class TestOpt0:
    def test_beats_identity_on_ranges(self):
        n = 64
        V = AllRange(n).gram().dense()
        res = opt_0(V, p=4, rng=0, restarts=2)
        assert res.loss < np.trace(V)  # better than Identity

    def test_accepts_matrix_gram(self):
        res = opt_0(AllRange(32).gram(), p=2, rng=0)
        assert res.loss > 0

    def test_default_p_heuristic(self):
        res = opt_0(AllRange(32).gram().dense(), rng=0)
        assert res.strategy.p == 2  # 32 // 16

    def test_explicit_init_used(self):
        V = Prefix(16).gram().dense()
        init = np.ones((1, 16))
        res = opt_0(V, p=1, rng=0, init=init)
        assert res.loss > 0

    def test_init_shape_validated(self):
        with pytest.raises(ValueError):
            opt_0(np.eye(8), p=2, init=np.ones((3, 8)))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            opt_0(np.ones((3, 4)))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            opt_0(np.eye(4), p=0)

    def test_restarts_never_hurt(self):
        V = AllRange(32).gram().dense()
        one = opt_0(V, p=2, rng=0, restarts=1).loss
        many = opt_0(V, p=2, rng=0, restarts=4).loss
        assert many <= one * (1 + 1e-9)

    def test_identity_workload_keeps_identity(self):
        """For W = I the optimal strategy is (essentially) the identity."""
        n = 16
        res = opt_0(np.eye(n), p=1, rng=0)
        assert res.loss <= n * (1 + 0.05)  # identity loss = n
