"""Tests for the data-dependent mechanisms (DAWA, PrivBayes) and data
generators."""

import numpy as np
import pytest

from repro import workload as wl
from repro.baselines import DAWA, PrivBayes
from repro.baselines.dawa import (
    aggregation_matrix,
    expansion_matrix,
    partition_costs,
)
from repro.data import (
    DPBENCH_1D,
    clustered_1d,
    correlated_tensor,
    powerlaw_1d,
    spatial_2d,
)
from repro.data.schemas import (
    adult_domain,
    cps_domain,
    patent_domain,
    synthetic_domain,
    taxi_domain,
)
from repro.domain import Domain


class TestPartition:
    def test_uniform_data_merges_buckets(self):
        x = np.full(64, 10.0)
        _, buckets = partition_costs(x, penalty=5.0)
        assert len(buckets) < 8  # uniform data collapses to few buckets

    def test_distinct_regions_split(self):
        x = np.concatenate([np.full(32, 100.0), np.full(32, 0.0)])
        _, buckets = partition_costs(x, penalty=1.0)
        # No bucket should straddle the boundary at 32.
        assert not any(lo < 32 < hi for lo, hi in buckets)

    def test_buckets_cover_domain(self):
        x = np.random.default_rng(0).random(37)
        _, buckets = partition_costs(x, penalty=0.5)
        covered = sorted((lo, hi) for lo, hi in buckets)
        assert covered[0][0] == 0 and covered[-1][1] == 37
        for (a, b), (c, d) in zip(covered, covered[1:]):
            assert b == c

    def test_bucket_lengths_are_powers_of_two(self):
        x = np.random.default_rng(1).random(64)
        _, buckets = partition_costs(x, penalty=0.5)
        for lo, hi in buckets:
            size = hi - lo
            assert size & (size - 1) == 0


class TestExpansionMatrices:
    def test_expansion_uniform(self):
        U = expansion_matrix([(0, 2), (2, 5)], 5).dense()
        assert np.allclose(U[:, 0], [0.5, 0.5, 0, 0, 0])
        assert np.allclose(U[:, 1], [0, 0, 1 / 3, 1 / 3, 1 / 3])

    def test_aggregation_sums(self):
        P = aggregation_matrix([(0, 2), (2, 5)], 5).dense()
        assert np.allclose(P @ np.arange(5.0), [1.0, 9.0])

    def test_aggregation_expansion_identity_on_totals(self):
        buckets = [(0, 3), (3, 4)]
        P = aggregation_matrix(buckets, 4).dense()
        U = expansion_matrix(buckets, 4).dense()
        assert np.allclose(P @ U, np.eye(2))


class TestDAWA:
    def test_validation(self):
        with pytest.raises(ValueError):
            DAWA(ratio=0.0)
        with pytest.raises(ValueError):
            DAWA(stage2="bogus")

    def test_answers_shape(self, rng):
        W = wl.prefix_1d(64)
        x = clustered_1d(64, scale=5000, rng=0)
        ans = DAWA().answer(W, x, eps=1.0, rng=rng)
        assert ans.shape == (64,)

    def test_accurate_at_huge_eps_on_clustered_data(self):
        W = wl.prefix_1d(128)
        x = np.zeros(128)
        x[:32] = 50.0  # one uniform region + empty tail
        ans = DAWA().answer(W, x, eps=1e6, rng=0)
        truth = W.matvec(x)
        assert np.abs(ans - truth).max() / truth.max() < 0.05

    def test_hdmm_stage2_improves(self):
        """Appendix B.3: replacing GreedyH with OPT_0 keeps or lowers error.

        The comparison is Monte-Carlo (both pipelines are randomized), so
        assert comparability with slack rather than strict dominance; the
        Table 6 bench measures the improvement over many datasets/trials.
        """
        W = wl.prefix_1d(256)
        x = clustered_1d(256, scale=100_000, rng=3)
        e_greedy = DAWA(stage2="greedyh").estimate_squared_error(
            W, x, eps=np.sqrt(2), trials=12, rng=5
        )
        e_hdmm = DAWA(stage2="hdmm").estimate_squared_error(
            W, x, eps=np.sqrt(2), trials=12, rng=5
        )
        assert e_hdmm < e_greedy * 1.2


class TestPrivBayes:
    def test_answers_shape(self, rng):
        dom = Domain(["a", "b", "c"], [5, 4, 3])
        x = correlated_tensor(dom, scale=2000, rng=0)
        W = wl.up_to_k_marginals(dom, 2)
        ans = PrivBayes(dom).answer(W, x, eps=1.0, rng=rng)
        assert ans.shape == (W.shape[0],)

    def test_preserves_total_count_scale(self, rng):
        dom = Domain(["a", "b"], [6, 6])
        x = correlated_tensor(dom, scale=5000, rng=1)
        W = wl.k_way_marginals(dom, 0)  # the total query
        ans = PrivBayes(dom).answer(W, x, eps=10.0, rng=rng)
        assert abs(ans[0] - x.sum()) / x.sum() < 0.05

    def test_high_eps_recovers_marginals(self):
        dom = Domain(["a", "b"], [4, 4])
        rng = np.random.default_rng(5)
        x = correlated_tensor(dom, scale=50_000, correlation=0.8, rng=2)
        W = wl.k_way_marginals(dom, 1)
        ans = PrivBayes(dom, degree=1).answer(W, x, eps=100.0, rng=rng)
        truth = W.matvec(x)
        assert np.abs(ans - truth).mean() / truth.mean() < 0.25

    def test_mutual_information_nonnegative(self, rng):
        from repro.baselines.privbayes import mutual_information

        joint = rng.random((4, 5)) * 100
        assert mutual_information(joint) >= 0

    def test_mutual_information_independent_is_zero(self):
        from repro.baselines.privbayes import mutual_information

        joint = np.outer([1, 2, 3], [4, 5]) * 1.0
        assert abs(mutual_information(joint)) < 1e-10


class TestGenerators:
    def test_scales_respected(self):
        for gen, args in [
            (clustered_1d, (128,)),
            (powerlaw_1d, (128,)),
        ]:
            x = gen(*args, scale=10_000, rng=0)
            assert abs(x.sum() - 10_000) / 10_000 < 0.05
            assert np.all(x >= 0)

    def test_spatial_2d_shape(self):
        x = spatial_2d(16, 24, scale=1000, rng=0)
        assert x.shape == (16 * 24,)
        assert np.all(x >= 0)

    def test_correlated_tensor_total(self):
        dom = Domain(["a", "b", "c"], [4, 4, 4])
        x = correlated_tensor(dom, scale=5000, rng=0)
        assert x.sum() == 5000
        assert x.shape == (64,)

    def test_correlation_increases_dependence(self):
        from repro.baselines.privbayes import mutual_information

        dom = Domain(["a", "b"], [8, 8])
        lo = correlated_tensor(dom, scale=50_000, correlation=0.05, rng=0)
        hi = correlated_tensor(dom, scale=50_000, correlation=0.9, rng=0)
        mi_lo = mutual_information(lo.reshape(8, 8))
        mi_hi = mutual_information(hi.reshape(8, 8))
        assert mi_hi > mi_lo

    def test_dpbench_named_generators(self):
        for name, gen in DPBENCH_1D.items():
            x = gen(64, 1000, 0)
            assert x.shape == (64,), name
            assert np.all(x >= 0), name

    def test_reproducibility(self):
        a = clustered_1d(64, rng=7)
        b = clustered_1d(64, rng=7)
        assert np.allclose(a, b)


class TestSchemas:
    def test_paper_domain_sizes(self):
        assert patent_domain().size() == 1024
        assert taxi_domain().size() == 256 * 256
        assert adult_domain().size() == 75 * 16 * 5 * 2 * 20
        assert cps_domain().size() == 100 * 50 * 7 * 4 * 2
        assert synthetic_domain(8, 10).size() == 10**8
