"""Tests for OPT_general (MM stand-in) and the OPT_HDMM driver."""

import numpy as np
import pytest

from repro.core.error import squared_error
from repro.domain import Domain
from repro.linalg import AllRange, MarginalsStrategy, Prefix
from repro.optimize import (
    general_loss_and_grad,
    identity_result,
    opt_0,
    opt_general,
    opt_hdmm,
)
from repro.workload import (
    k_way_marginals,
    prefix_1d,
    prefix_identity,
    range_total_union,
)


class TestGeneralLossAndGrad:
    def test_loss_matches_direct(self, rng):
        B = rng.random((6, 4)) + 0.1
        V = Prefix(4).gram().dense()
        loss, _ = general_loss_and_grad(B, V)
        A = B / B.sum(axis=0)
        assert np.isclose(loss, np.trace(np.linalg.inv(A.T @ A) @ V))

    def test_gradient_finite_differences(self, rng):
        B = rng.random((5, 4)) + 0.1
        V = AllRange(4).gram().dense()
        _, grad = general_loss_and_grad(B, V)
        h = 1e-7
        for _ in range(5):
            k, l = rng.integers(5), rng.integers(4)
            Bp, Bm = B.copy(), B.copy()
            Bp[k, l] += h
            Bm[k, l] -= h
            fd = (
                general_loss_and_grad(Bp, V)[0] - general_loss_and_grad(Bm, V)[0]
            ) / (2 * h)
            assert np.isclose(grad[k, l], fd, rtol=1e-3)

    def test_zero_column_safe(self):
        B = np.zeros((3, 2))
        loss, _ = general_loss_and_grad(B, np.eye(2))
        assert loss == np.inf


class TestOptGeneral:
    def test_unrestricted_at_least_as_good_as_p_identity(self):
        """The full space contains all p-Identity strategies."""
        V = AllRange(16).gram().dense()
        general = opt_general(V, rng=0, restarts=3, maxiter=2000).loss
        pid = opt_0(V, p=1, rng=0, restarts=3).loss
        assert general <= pid * 1.10  # allow local-minimum slack

    def test_sensitivity_normalized(self):
        V = Prefix(8).gram().dense()
        res = opt_general(V, rng=0)
        A = res.strategy.dense()
        assert np.allclose(np.abs(A).sum(axis=0), 1.0)

    def test_p_below_n_rejected(self):
        with pytest.raises(ValueError):
            opt_general(np.eye(8), p=4)


class TestDriver:
    def test_identity_result_loss(self):
        W = prefix_1d(16)
        res = identity_result(W)
        assert np.isclose(res.loss, np.trace(W.gram().dense()))

    def test_never_worse_than_identity(self):
        for W in [prefix_1d(32), prefix_identity(8), range_total_union(8)]:
            best = opt_hdmm(W, restarts=1, rng=0)
            assert best.loss <= identity_result(W).loss * (1 + 1e-9)

    def test_loss_matches_reported_strategy(self):
        W = prefix_identity(8)
        best = opt_hdmm(W, restarts=2, rng=0)
        assert np.isclose(best.loss, squared_error(W, best.strategy), rtol=1e-6)

    def test_marginals_workload_selects_marginals_strategy(self):
        dom = Domain(["a", "b", "c", "d"], [5, 5, 5, 5])
        W = k_way_marginals(dom, 1)
        best = opt_hdmm(W, restarts=2, rng=0)
        assert isinstance(best.strategy, MarginalsStrategy)

    def test_custom_operator_set(self):
        from repro.optimize import OptResult, opt_kron

        calls = []

        def op(w, rng):
            calls.append(1)
            return opt_kron(w, rng=rng)

        opt_hdmm(prefix_1d(16), restarts=3, rng=0, operators=[("custom", op)])
        assert len(calls) == 3

    def test_restart_count_reported(self):
        res = opt_hdmm(prefix_1d(16), restarts=2, rng=0)
        assert res.restarts == 2
