"""Consistency tests for the vectorized matmat/rmatmat fast paths.

Every Matrix subclass that overrides ``matmat``/``rmatmat`` (the hot path
of Algorithm 1) must agree with its dense form; a silent mismatch here
would corrupt every multi-dimensional measurement.
"""

import numpy as np
import pytest

from repro.linalg import (
    AllRange,
    Dense,
    Identity,
    Kronecker,
    Ones,
    Permuted,
    Prefix,
    SparseMatrix,
    VStack,
    Weighted,
    WidthRange,
)
from repro.optimize import PIdentity


def _cases(rng):
    from scipy import sparse as sp

    return [
        Dense(rng.standard_normal((4, 5))),
        Identity(5),
        Ones(3, 5),
        Ones(1, 5),
        Prefix(5),
        AllRange(5),
        WidthRange(5, 2),
        Weighted(Prefix(5), 2.5),
        VStack([Identity(5), Prefix(5)]),
        Permuted(AllRange(5), rng.permutation(5)),
        PIdentity(rng.random((2, 5))),
        SparseMatrix(sp.random(4, 5, density=0.5, random_state=0)),
        Kronecker([Dense(rng.standard_normal((2, 5)))]),
    ]


@pytest.mark.parametrize("idx", range(13))
def test_matmat_matches_dense(idx, rng):
    M = _cases(rng)[idx]
    X = rng.standard_normal((M.shape[1], 4))
    assert np.allclose(M.matmat(X), M.dense() @ X), type(M).__name__


@pytest.mark.parametrize("idx", range(13))
def test_rmatmat_matches_dense(idx, rng):
    M = _cases(rng)[idx]
    Y = rng.standard_normal((M.shape[0], 3))
    assert np.allclose(M.rmatmat(Y), M.dense().T @ Y), type(M).__name__


@pytest.mark.parametrize("idx", range(13))
def test_transpose_matmat_roundtrip(idx, rng):
    """Aᵀ as a Matrix must apply the fast rmatmat path."""
    M = _cases(rng)[idx]
    Y = rng.standard_normal((M.shape[0], 3))
    assert np.allclose(M.T.matmat(Y), M.dense().T @ Y), type(M).__name__


@pytest.mark.parametrize("idx", range(13))
def test_matmat_1d_input_degrades_to_matvec(idx, rng):
    M = _cases(rng)[idx]
    x = rng.standard_normal(M.shape[1])
    assert np.allclose(M.matmat(x), M.matvec(x)), type(M).__name__


class TestKmatvecOrdering:
    """The shrink-first/rightmost-first application order of kmatvec must
    never change the result (factors act on distinct tensor axes)."""

    def test_mixed_shrink_grow(self, rng):
        from repro.linalg import kmatvec

        shapes = [(6, 2), (1, 5), (3, 3), (2, 4)]
        mats = [rng.standard_normal(s) for s in shapes]
        E = mats[0]
        for M in mats[1:]:
            E = np.kron(E, M)
        x = rng.standard_normal(E.shape[1])
        assert np.allclose(kmatvec([Dense(M) for M in mats], x), E @ x)

    def test_identity_factors_skipped_correctly(self, rng):
        K = Kronecker([Identity(3), Dense(rng.standard_normal((2, 4))), Identity(2)])
        E = np.kron(np.kron(np.eye(3), K.factors[1].dense()), np.eye(2))
        x = rng.standard_normal(24)
        assert np.allclose(K.matvec(x), E @ x)

    def test_all_identity(self, rng):
        K = Kronecker([Identity(3), Identity(4)])
        x = rng.standard_normal(12)
        assert np.allclose(K.matvec(x), x)
