"""The mechanism subsystem: Gaussian measurement, zCDP accounting, policies.

Covers the PR 10 contracts:

* **L2 sensitivity** — ``sensitivity(p=2)`` / ``column_norms`` agree
  with the dense equivalents on every structured matrix class;
* **validate_budget** — the shared (ε, δ, ρ) validator's domains;
* **conversions** — zCDP ↔ (ε, δ) round trips and the Gaussian σ
  calibration;
* **mechanisms** — Laplace/Gaussian cost algebra, batched-noise
  determinism (batch == spawned-seed loop, bit-identical);
* **curves + policies** — SpendCurve composition, pure-ε/(ε, δ)/ρ cap
  admission, native-unit remaining budgets;
* **accountant** — Gaussian debits carry (δ, ρ), policy-aware refusals,
  and the WAL version compatibility matrix: v1 pure-ε ledgers replay
  bit-equal to the plain float fold, mixed v1/v2 ledgers fold correctly,
  and read-only ``obs.spend.replay`` stays bit-equal to
  ``PrivacyAccountant.recover`` on both;
* **end to end** — Gaussian answers bit-identical across save/reload
  and in-process vs wire at the same seeds; plan-reported ε equals the
  accountant's actual debit for both mechanisms; the 403 body reports
  the active policy kind and its native-unit remaining budget.
"""

import asyncio
import json
import math

import numpy as np
import pytest

from repro import workload
from repro.api import Schema, Session, marginal, total
from repro.core import (
    DEFAULT_DELTA,
    eps_to_rho,
    gaussian_measure,
    gaussian_measure_batch,
    gaussian_sigma,
    pure_eps_to_rho,
    rho_to_eps,
    validate_budget,
)
from repro.core.hdmm import HDMM
from repro.core.measure import laplace_measure_batch, measurement_variance
from repro.linalg import (
    AllRange,
    Dense,
    Diagonal,
    Identity,
    Kronecker,
    MarginalsStrategy,
    Ones,
    Permuted,
    Prefix,
    Sum,
    VStack,
    Weighted,
    WidthRange,
)
from repro.optimize.parallel import spawn_seeds
from repro.privacy import (
    ApproxDPPolicy,
    GaussianMechanism,
    LaplaceMechanism,
    PrivacyCost,
    PureEpsilonPolicy,
    SpendCurve,
    ZCDPPolicy,
    fold_debit,
    get_mechanism,
    policy_from_dict,
)
from repro.service import PrivacyAccountant, QueryService, StrategyRegistry
from repro.service.accountant import BudgetExceededError
from repro.service.ledger import encode_record
from repro.obs.spend import replay
from repro.server.app import ServerApp
from repro.server.errors import error_response


# ---------------------------------------------------------------------------
# satellite 1: L2 sensitivity on every structured class
# ---------------------------------------------------------------------------


def _structured_zoo():
    rng = np.random.default_rng(0)
    perm = rng.permutation(8)
    return [
        Identity(6),
        Ones(3, 5),
        Diagonal(np.array([1.5, -2.0, 0.5, 3.0])),
        Prefix(7),
        AllRange(6),
        WidthRange(8, 3),
        Permuted(Prefix(8), perm),
        Dense(rng.normal(size=(5, 4))),
        Weighted(Prefix(6), 2.5),
        VStack([Identity(5), Prefix(5), Ones(1, 5)]),
        Sum([Weighted(Identity(4), 1.5), Dense(rng.normal(size=(4, 4)))]),
        Kronecker([Prefix(4), Identity(3)]),
        Kronecker([Ones(1, 4), AllRange(3)]),
        MarginalsStrategy((3, 4), np.array([0.5, 1.0, 0.25, 2.0])),
        Weighted(Kronecker([Identity(3), Ones(1, 4)]), 0.75),
        Identity(6).T,
    ]


class TestL2Sensitivity:
    @pytest.mark.parametrize(
        "M", _structured_zoo(), ids=lambda M: type(M).__name__
    )
    def test_matches_dense_column_norms(self, M):
        d = M.dense()
        ref = np.sqrt((d * d).sum(axis=0))
        np.testing.assert_allclose(M.column_norms(), ref, rtol=1e-12, atol=1e-12)
        assert M.sensitivity(p=2) == pytest.approx(ref.max(), rel=1e-12)

    @pytest.mark.parametrize(
        "M", _structured_zoo(), ids=lambda M: type(M).__name__
    )
    def test_p1_unchanged_and_default(self, M):
        d = np.abs(M.dense()).sum(axis=0).max()
        assert M.sensitivity() == pytest.approx(d, rel=1e-12)
        assert M.sensitivity(p=1) == M.sensitivity()

    def test_constant_column_norm_shortcuts_agree(self):
        # Classes with closed-form constant norms must agree with the
        # vector path (and never disagree with dense).
        for M in (Identity(9), Ones(4, 6), MarginalsStrategy((2, 3), np.ones(4))):
            c = M.constant_column_norm()
            if c is not None:
                np.testing.assert_allclose(
                    np.full(M.shape[1], c), M.column_norms(), rtol=1e-12
                )

    def test_sparse_matrix_if_scipy(self):
        sp = pytest.importorskip("scipy.sparse")
        from repro.linalg import SparseMatrix

        A = SparseMatrix(sp.random(6, 5, density=0.4, random_state=1).tocsr())
        d = A.dense()
        np.testing.assert_allclose(
            A.column_norms(), np.sqrt((d * d).sum(axis=0)), rtol=1e-12
        )
        assert A.sensitivity(p=2) == pytest.approx(
            np.sqrt((d * d).sum(axis=0)).max()
        )

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError, match="order p"):
            Identity(3).sensitivity(p=3)

    def test_kron_l2_is_product_of_factors(self):
        K = Kronecker([Prefix(4), AllRange(3)])
        assert K.sensitivity(p=2) == pytest.approx(
            Prefix(4).sensitivity(p=2) * AllRange(3).sensitivity(p=2)
        )


# ---------------------------------------------------------------------------
# satellite 2: validate_budget
# ---------------------------------------------------------------------------


class TestValidateBudget:
    def test_eps_grid_passthrough(self):
        out = validate_budget(eps=[0.1, 1.0])
        np.testing.assert_array_equal(out["eps"], [0.1, 1.0])

    def test_delta_domain(self):
        assert float(validate_budget(delta=0.0)["delta"]) == 0.0
        assert float(validate_budget(delta=1e-6)["delta"]) == 1e-6
        for bad in (-1e-9, 1.0, 1.5, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="delta"):
                validate_budget(delta=bad)

    def test_rho_positive(self):
        assert float(validate_budget(rho=0.5)["rho"]) == 0.5
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                validate_budget(rho=bad)

    def test_eps_positive(self):
        for bad in (0.0, -0.5, float("inf")):
            with pytest.raises(ValueError):
                validate_budget(eps=bad)

    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_budget()

    def test_returns_only_what_was_passed(self):
        assert set(validate_budget(eps=1.0, delta=0.1)) == {"eps", "delta"}


# ---------------------------------------------------------------------------
# zCDP ↔ (ε, δ) conversions
# ---------------------------------------------------------------------------


class TestConversions:
    def test_round_trip(self):
        for eps in (0.1, 1.0, 5.0):
            for delta in (1e-9, 1e-6, 1e-3):
                rho = eps_to_rho(eps, delta)
                assert rho_to_eps(rho, delta) == pytest.approx(eps, rel=1e-10)

    def test_rho_to_eps_formula(self):
        rho, delta = 0.3, 1e-6
        assert rho_to_eps(rho, delta) == pytest.approx(
            rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))
        )

    def test_pure_eps_to_rho(self):
        assert pure_eps_to_rho(2.0) == pytest.approx(2.0)  # ε²/2
        assert pure_eps_to_rho(0.5) == pytest.approx(0.125)

    def test_gaussian_sigma_calibration(self):
        eps, delta, sens2 = 1.0, 1e-6, 3.0
        rho = eps_to_rho(eps, delta)
        assert gaussian_sigma(sens2, eps, delta) == pytest.approx(
            sens2 * math.sqrt(1.0 / (2.0 * rho))
        )

    def test_sigma_monotone_in_budget(self):
        # More budget (larger ε or looser δ) always means less noise,
        # and σ scales linearly in the L2 sensitivity.
        assert gaussian_sigma(1.0, 2.0, 1e-6) < gaussian_sigma(1.0, 1.0, 1e-6)
        assert gaussian_sigma(1.0, 1.0, 1e-3) < gaussian_sigma(1.0, 1.0, 1e-6)
        assert gaussian_sigma(3.0, 1.0, 1e-6) == pytest.approx(
            3.0 * gaussian_sigma(1.0, 1.0, 1e-6)
        )


# ---------------------------------------------------------------------------
# mechanisms: cost algebra + batched-noise determinism
# ---------------------------------------------------------------------------


class TestMechanisms:
    def test_get_mechanism(self):
        assert isinstance(get_mechanism("laplace"), LaplaceMechanism)
        g = get_mechanism("gaussian")
        assert isinstance(g, GaussianMechanism) and g.delta == DEFAULT_DELTA
        assert get_mechanism("gaussian", 1e-8).delta == 1e-8
        with pytest.raises(ValueError):
            get_mechanism("cauchy")
        with pytest.raises(ValueError):
            get_mechanism("laplace", 1e-6)
        # instance pass-through, re-calibrated on a conflicting delta
        assert get_mechanism(g) is g
        assert get_mechanism(g, 1e-9).delta == 1e-9

    def test_gaussian_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            GaussianMechanism(delta=0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(delta=1.0)

    def test_laplace_cost(self):
        c = LaplaceMechanism().cost(0.5)
        assert (c.epsilon, c.delta, c.mechanism) == (0.5, 0.0, "laplace")
        assert c.rho == pytest.approx(pure_eps_to_rho(0.5))

    def test_gaussian_cost_composes_per_release(self):
        g = GaussianMechanism(delta=1e-6)
        c = g.cost([0.5, 1.0])
        assert c.epsilon == pytest.approx(1.5)
        assert c.delta == pytest.approx(2e-6)  # δ · #releases
        assert c.rho == pytest.approx(
            eps_to_rho(0.5, 1e-6) + eps_to_rho(1.0, 1e-6)
        )
        assert c.mechanism == "gaussian"

    def test_noise_scale_uses_l2_sensitivity(self):
        A = Prefix(16)
        g = GaussianMechanism(delta=1e-6)
        assert g.sensitivity(A) == pytest.approx(A.sensitivity(p=2))
        assert g.noise_scale(A, 1.0) == pytest.approx(
            gaussian_sigma(A.sensitivity(p=2), 1.0, 1e-6)
        )
        l = LaplaceMechanism()
        assert l.noise_scale(A, 2.0) == pytest.approx(A.sensitivity() / 2.0)

    def test_batch_noise_bit_identical_to_spawned_loop(self):
        A = Prefix(12)
        x = np.arange(12, dtype=float)
        eps = np.array([0.5, 1.0, 2.0])
        batch = gaussian_measure_batch(A, x, eps, rng=7)
        seeds = spawn_seeds(7, eps.size)
        for j in range(eps.size):
            ref = gaussian_measure(A, x, float(eps[j]), rng=seeds[j])
            assert np.array_equal(batch[:, j], ref)

    def test_batch_delta_threads_through(self):
        A = Identity(6)
        x = np.zeros(6)
        a = gaussian_measure_batch(A, x, 1.0, rng=3, trials=2, delta=1e-6)
        b = gaussian_measure_batch(A, x, 1.0, rng=3, trials=2, delta=1e-3)
        # Same seeds, smaller σ at the looser δ: same sign pattern,
        # strictly smaller magnitudes.
        assert np.all(np.sign(a) == np.sign(b))
        assert np.all(np.abs(b) < np.abs(a))

    def test_gaussian_variance_identity(self):
        A = AllRange(8)
        v = measurement_variance(A, 1.0, mechanism="gaussian", delta=1e-6)
        assert v == pytest.approx(
            gaussian_sigma(A.sensitivity(p=2), 1.0, 1e-6) ** 2
        )

    def test_mechanism_aware_expected_error_weight_invariance(self):
        # Scaling a strategy by w rescales sensitivity and the solve
        # identically, so expected error is invariant — for both norms.
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        A = mech.strategy
        for m in ("laplace", "gaussian"):
            e1 = mech.expected_rootmse(1.0, mechanism=m)
            mech2 = HDMM(restarts=1, rng=0)
            mech2.workload, mech2.strategy = W, Weighted(A, 3.0)
            e2 = mech2.expected_rootmse(1.0, mechanism=m)
            assert e2 == pytest.approx(e1, rel=1e-9)


# ---------------------------------------------------------------------------
# curves and policies
# ---------------------------------------------------------------------------


class TestSpendCurve:
    def test_sequential_add_is_plain_float_sum(self):
        curve = SpendCurve()
        running = 0.0
        for eps in (0.1, 0.2, 0.30000000000000004, 0.7):
            curve.add(PrivacyCost.laplace(eps))
            running += eps
        assert curve.epsilon == running  # bit-equal, not approx

    def test_parallel_is_max(self):
        curve = SpendCurve()
        curve.add_parallel(PrivacyCost.laplace(1.0))
        curve.add_parallel(PrivacyCost.laplace(0.5))
        assert (curve.epsilon, curve.rho) == (1.0, pure_eps_to_rho(1.0))

    def test_epsilon_at_reports_composed_rho(self):
        curve = SpendCurve()
        curve.add(PrivacyCost.gaussian(1.0, 1e-6))
        curve.add(PrivacyCost.gaussian(1.0, 1e-6))
        rho = 2 * eps_to_rho(1.0, 1e-6)
        assert curve.epsilon_at(1e-6) == pytest.approx(rho_to_eps(rho, 1e-6))
        # zCDP composition reports tighter than naive ε summation.
        assert curve.epsilon_at(1e-6) < curve.epsilon


class TestPolicies:
    def test_pure_epsilon_matches_legacy_cap_math(self):
        p = PureEpsilonPolicy(1.0)
        curve = SpendCurve()
        curve.add(PrivacyCost.laplace(0.4))
        assert p.admits(curve, PrivacyCost.laplace(0.6))
        assert not p.admits(curve, PrivacyCost.laplace(0.6000001))
        assert p.epsilon_remaining(curve) == pytest.approx(0.6)
        assert p.remaining(curve) == {"epsilon": pytest.approx(0.6)}

    def test_approx_dp_enforces_both_axes(self):
        p = ApproxDPPolicy(epsilon=2.0, delta=1e-6)
        curve = SpendCurve()
        assert p.admits(curve, PrivacyCost.gaussian(1.0, 5e-7))
        assert not p.admits(curve, PrivacyCost.gaussian(1.0, 2e-6))  # δ blown
        assert not p.admits(curve, PrivacyCost.gaussian(2.5, 1e-7))  # ε blown

    def test_approx_dp_zero_delta_forbids_gaussian(self):
        p = ApproxDPPolicy(epsilon=2.0, delta=0.0)
        assert not p.admits(SpendCurve(), PrivacyCost.gaussian(0.5, 1e-6))
        assert p.admits(SpendCurve(), PrivacyCost.laplace(0.5))

    def test_zcdp_epsilon_view(self):
        p = ZCDPPolicy(rho=0.5)
        assert p.epsilon_cap() == pytest.approx(1.0)  # √(2ρ)
        curve = SpendCurve()
        curve.add(PrivacyCost.laplace(0.6))  # ρ = 0.18
        assert p.epsilon_remaining(curve) == pytest.approx(
            math.sqrt(2 * (0.5 - pure_eps_to_rho(0.6)))
        )
        assert p.remaining(curve)["rho"] == pytest.approx(0.5 - 0.18)

    def test_zcdp_admits_by_rho_not_epsilon(self):
        # At ε=1, a Gaussian release costs far less ρ than a Laplace
        # one — a ρ cap admits the Gaussian after refusing the Laplace.
        p = ZCDPPolicy(rho=0.1)
        assert not p.admits(SpendCurve(), PrivacyCost.laplace(1.0))  # ρ=0.5
        assert p.admits(SpendCurve(), PrivacyCost.gaussian(1.0, 1e-6))

    def test_round_trip_serialization(self):
        for p in (
            PureEpsilonPolicy(1.5),
            ApproxDPPolicy(2.0, 1e-6),
            ZCDPPolicy(0.25),
        ):
            assert policy_from_dict(p.to_dict()) == p
        # v1 dicts without "kind" mean pure-ε
        assert policy_from_dict({"epsilon": 3.0}) == PureEpsilonPolicy(3.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ApproxDPPolicy(1.0, 1.0)
        with pytest.raises(ValueError):
            ZCDPPolicy(-0.5)


# ---------------------------------------------------------------------------
# satellite 3: accountant + WAL version compatibility
# ---------------------------------------------------------------------------


def _write_ledger(path, records):
    with open(path, "wb") as f:
        for r in records:
            f.write(encode_record(r))


class TestAccountantMechanisms:
    def test_gaussian_charge_records_delta_and_rho(self):
        acct = PrivacyAccountant()
        acct.register("d", policy=ApproxDPPolicy(5.0, 1e-5))
        acct.charge("d", 1.0, mechanism="gaussian", delta=1e-6)
        entry = acct.ledger[-1]
        assert entry.mechanism == "gaussian"
        assert entry.delta == 1e-6
        assert entry.rho == pytest.approx(eps_to_rho(1.0, 1e-6))
        assert acct.spent("d") == 1.0
        assert acct.curve("d").delta == 1e-6

    def test_laplace_charges_unchanged(self):
        acct = PrivacyAccountant()
        acct.register("d", 2.0)
        acct.charge("d", [0.5, 0.25])
        assert acct.spent("d") == 0.75
        assert acct.ledger[-1].mechanism == "laplace"
        assert acct.remaining("d") == pytest.approx(1.25)

    def test_policy_refusal_carries_native_remaining(self):
        acct = PrivacyAccountant()
        acct.register("d", policy=ZCDPPolicy(0.2))
        acct.charge("d", 0.4, mechanism="gaussian", delta=1e-6)
        with pytest.raises(BudgetExceededError) as ei:
            acct.charge("d", 1.0)  # Laplace ρ = 0.5 > remaining
        e = ei.value
        assert e.policy_kind == "zcdp"
        assert set(e.native_remaining) == {"rho"}
        assert e.native_remaining["rho"] == pytest.approx(
            0.2 - eps_to_rho(0.4, 1e-6)
        )
        assert "zcdp policy" in str(e)

    def test_pure_epsilon_refusal_message_unchanged(self):
        e = BudgetExceededError("adult", 5.0, 4.0, 2.0, "sequential")
        assert e.policy_kind == "epsilon"
        assert e.native_remaining == {"epsilon": 1.0}
        assert "[" not in str(e)  # no policy suffix on the v1 message

    def test_delta_cap_zero_refuses_gaussian(self):
        acct = PrivacyAccountant()
        acct.register("d", policy=ApproxDPPolicy(5.0, 0.0))
        with pytest.raises(BudgetExceededError):
            acct.charge("d", 0.1, mechanism="gaussian", delta=1e-9)
        acct.charge("d", 0.1)  # Laplace still fine

    def test_parallel_composition_debits_max_branch(self):
        # Parallel composition collapses a call's branch grid to its max
        # branch before the debit — for Gaussian branches the (δ, ρ)
        # recorded are the max branch's, not the grid sum.
        acct = PrivacyAccountant()
        acct.register("d", 10.0)
        acct.charge_parallel("d", [1.0, 0.5], mechanism="gaussian", delta=1e-6)
        assert acct.spent("d") == 1.0
        c = acct.curve("d")
        assert c.delta == 1e-6
        assert c.rho == pytest.approx(eps_to_rho(1.0, 1e-6))


class TestWALCompat:
    V1 = [
        {"v": 1, "kind": "register", "dataset": "adult", "cap": 5.0},
        {"v": 1, "kind": "debit", "dataset": "adult", "epsilon": 0.1,
         "composition": "sequential", "stage": "a"},
        {"v": 1, "kind": "debit", "dataset": "adult", "epsilon": 0.2,
         "composition": "sequential", "stage": "b"},
        {"v": 1, "kind": "debit", "dataset": "adult", "epsilon": 0.30000000000000004,
         "composition": "sequential", "stage": "c"},
    ]

    def test_v1_ledger_replays_bit_equal_to_plain_fold(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        _write_ledger(path, self.V1)
        acct = PrivacyAccountant.recover(path)
        # Pre-PR recovery summed plain floats in record order; the fold
        # must reproduce that bit-for-bit.
        running = 0.0
        for r in self.V1[1:]:
            running += r["epsilon"]
        assert acct.spent("adult") == running
        assert acct.cap("adult") == 5.0
        assert acct.remaining("adult") == max(0.0, 5.0 - running)
        assert acct.policy("adult") == PureEpsilonPolicy(5.0)
        # ρ is tracked under the hood (ε²/2 per debit) without touching ε.
        assert acct.curve("adult").rho == pytest.approx(
            sum(pure_eps_to_rho(r["epsilon"]) for r in self.V1[1:])
        )
        assert acct.curve("adult").delta == 0.0

    def test_replay_bit_equal_to_recover_on_v1(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        _write_ledger(path, self.V1)
        report = replay(path)
        acct = PrivacyAccountant.recover(path)
        assert report.spent("adult") == acct.spent("adult")
        ds = report.datasets["adult"]
        assert (ds.delta, ds.rho) == (
            acct.curve("adult").delta, acct.curve("adult").rho
        )
        assert ds.remaining == acct.remaining("adult")

    def test_mixed_v1_v2_ledger_folds_correctly(self, tmp_path):
        rho = eps_to_rho(0.5, 1e-6)
        records = self.V1 + [
            {"v": 2, "kind": "debit", "dataset": "adult", "epsilon": 0.5,
             "delta": 1e-6, "rho": rho, "mechanism": "gaussian",
             "composition": "sequential", "stage": "g"},
        ]
        path = str(tmp_path / "eps.wal")
        _write_ledger(path, records)
        acct = PrivacyAccountant.recover(path)
        report = replay(path)
        expected_eps = 0.0
        for r in records[1:]:
            expected_eps += r["epsilon"]
        assert acct.spent("adult") == expected_eps
        assert report.spent("adult") == acct.spent("adult")
        ds = report.datasets["adult"]
        assert ds.delta == acct.curve("adult").delta == 1e-6
        assert ds.rho == acct.curve("adult").rho
        assert ds.rho == pytest.approx(
            sum(pure_eps_to_rho(r["epsilon"]) for r in self.V1[1:]) + rho
        )
        # The Gaussian event keeps its provenance on the timeline.
        assert report.timeline[-1].mechanism == "gaussian"
        assert report.timeline[-1].delta == 1e-6

    def test_live_laplace_debits_stay_v1_on_disk(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=path)
        acct.register("d", 5.0)
        acct.charge("d", 0.5, stage="x")
        raw = open(path, "rb").read().decode()
        assert '"v":1' in raw
        assert "mechanism" not in raw and "rho" not in raw
        # A Gaussian debit lands as v2 with full provenance.
        acct.charge("d", 0.5, mechanism="gaussian", delta=1e-6, stage="y")
        raw = open(path, "rb").read().decode()
        assert '"v":2' in raw and '"mechanism":"gaussian"' in raw

    def test_live_state_bit_equal_to_recovery_and_replay(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=path)
        acct.register("d", policy=ApproxDPPolicy(10.0, 1e-4))
        acct.charge("d", 0.1)
        acct.charge("d", 0.7, mechanism="gaussian", delta=1e-6)
        acct.charge("d", [0.2, 0.3], mechanism="gaussian", delta=1e-7)
        live = acct.curve("d")

        recovered = PrivacyAccountant.recover(path)
        assert recovered.curve("d") == live
        assert recovered.spent("d") == acct.spent("d")
        assert recovered.policy("d") == ApproxDPPolicy(10.0, 1e-4)
        assert recovered.remaining("d") == acct.remaining("d")

        report = replay(path)
        ds = report.datasets["d"]
        assert (ds.spent, ds.delta, ds.rho) == (
            live.epsilon, live.delta, live.rho
        )
        assert ds.policy == {"kind": "approx_dp", "epsilon": 10.0, "delta": 1e-4}
        assert ds.native_remaining == acct.native_remaining("d")

    def test_v2_register_policy_survives_recovery(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=path)
        acct.register("z", policy=ZCDPPolicy(0.5))
        acct.charge("z", 0.3, mechanism="gaussian", delta=1e-6)
        recovered = PrivacyAccountant.recover(path)
        assert recovered.policy("z") == ZCDPPolicy(0.5)
        assert recovered.native_remaining("z")["rho"] == pytest.approx(
            0.5 - eps_to_rho(0.3, 1e-6)
        )

    def test_fold_debit_defaults_v1_rho(self):
        curve = SpendCurve()
        cost = fold_debit(
            curve, {"kind": "debit", "dataset": "d", "epsilon": 0.4}
        )
        assert cost.mechanism == "laplace"
        assert curve.rho == pytest.approx(pure_eps_to_rho(0.4))


# ---------------------------------------------------------------------------
# end to end: engine, planner, session, server
# ---------------------------------------------------------------------------


def _small_session(tmp_path, cap=50.0, policy=None, wal=False):
    acct_kw = {"wal_path": str(tmp_path / "eps.wal")} if wal else {}
    sess = Session(
        registry=StrategyRegistry(str(tmp_path / "reg")),
        accountant=PrivacyAccountant(default_cap=cap, **acct_kw),
        restarts=1,
        rng=0,
    )
    schema = Schema.from_spec({"age": 8, "sex": ["M", "F"]})
    data = np.random.default_rng(5).poisson(20, schema.domain.shape()).astype(float)
    kw = {"policy": policy} if policy is not None else {"epsilon_cap": cap}
    ds = sess.dataset("adult", schema=schema, data=data, **kw)
    return sess, ds


class TestMechanismServing:
    def test_gaussian_save_reload_bit_identical(self, tmp_path):
        W = workload.range_total_union(8)
        x = np.arange(W.shape[1], dtype=float)
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1, rng=0, template="opt_union",
        )
        svc.add_dataset("d", x, epsilon_cap=50.0)
        first = svc.measure(
            "d", W, eps=np.array([0.5, 1.0]), trials=2, rng=11,
            mechanism="gaussian", delta=1e-6, exact=True, warm_start=False,
        )
        assert first.mechanism == "gaussian"

        # Fresh service over the same registry directory: same seeds,
        # bit-identical Gaussian answers.
        svc2 = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1, rng=0, template="opt_union",
        )
        svc2.add_dataset("d", x)
        second = svc2.measure(
            "d", W, eps=np.array([0.5, 1.0]), trials=2, rng=11,
            mechanism="gaussian", delta=1e-6, exact=True, warm_start=False,
        )
        assert second.from_registry
        assert np.array_equal(first.answers, second.answers)

    def test_gaussian_measure_debits_per_release(self, tmp_path):
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1, rng=0, template="opt_union",
        )
        acct = svc.accountant
        W = workload.range_total_union(16)
        x = np.arange(W.shape[1], dtype=float)
        svc.add_dataset("d", x, epsilon_cap=50.0)
        eps = np.array([0.5, 1.0])
        svc.measure("d", W, eps=eps, trials=3, rng=0,
                    mechanism="gaussian", delta=1e-6)
        assert acct.spent("d") == pytest.approx(3 * eps.sum())
        c = acct.curve("d")
        assert c.delta == pytest.approx(6 * 1e-6)  # δ per trial release
        assert c.rho == pytest.approx(
            3 * (eps_to_rho(0.5, 1e-6) + eps_to_rho(1.0, 1e-6))
        )

    def test_plan_epsilon_equals_debit_both_mechanisms(self, tmp_path):
        for mech in ("laplace", "gaussian"):
            sess, ds = _small_session(tmp_path / mech)
            exprs = [marginal("age"), total()]
            plan = ds.plan(exprs, eps=0.8, mechanism=mech)
            assert plan.mechanism == mech
            before = ds.spent
            answers = ds.ask_many(exprs, eps=0.8, rng=1, mechanism=mech)
            debited = ds.spent - before
            assert plan.total_epsilon == debited  # exact, not approx
            assert all(a.mechanism == mech for a in answers if a.epsilon > 0)

    def test_plan_surfaces_both_rmse_columns(self, tmp_path):
        sess, ds = _small_session(tmp_path)
        exprs = [marginal("age")]
        ds.ask_many(exprs, eps=1.0, rng=0)  # warm the cache
        plan = ds.plan(exprs + [total()], eps=0.5, mechanism="gaussian")
        text = plan.explain()
        assert "rmse(lap)≈" in text and "rmse(gauss)≈" in text
        assert "mechanism = gaussian" in text
        measured = [e for e in plan.entries if e.epsilon not in (None, 0.0)]
        for e in measured:
            if e.expected_rmse is not None:
                assert e.rmse_laplace is not None
                assert e.rmse_gaussian is not None
                assert e.rmse_laplace != e.rmse_gaussian

    def test_answers_carry_mechanism_provenance(self, tmp_path):
        sess, ds = _small_session(tmp_path)
        a = ds.ask(total(), eps=0.5, rng=2, mechanism="gaussian", delta=1e-6)
        assert a.mechanism == "gaussian"
        # A later hit rides the cached Gaussian reconstruction and says so.
        b = ds.ask(total())
        assert b.epsilon == 0.0
        assert b.mechanism == "gaussian"

    def test_budget_report_shows_gaussian_columns(self, tmp_path):
        sess, ds = _small_session(tmp_path, policy=ApproxDPPolicy(20.0, 1e-4))
        ds.ask(total(), eps=0.5, rng=2, mechanism="gaussian")
        report = sess.budget_report()
        rds = report.datasets["adult"]
        assert rds.policy == {"kind": "approx_dp", "epsilon": 20.0, "delta": 1e-4}
        assert rds.delta > 0
        acct = sess.service.accountant
        assert rds.spent == acct.spent("adult")
        assert rds.native_remaining == acct.native_remaining("adult")
        text = report.render()
        assert "δ" in text and "ρ" in text

    def test_pure_epsilon_report_render_has_no_new_columns(self, tmp_path):
        sess, ds = _small_session(tmp_path)
        ds.ask(total(), eps=0.5, rng=2)
        text = sess.budget_report().render()
        assert "δ" not in text and "ρ" not in text


class TestServerMechanisms:
    def _run(self, coro):
        return asyncio.run(coro)

    def _make_app(self, tmp_path, policy=None, cap=50.0):
        sess = Session(
            registry=StrategyRegistry(str(tmp_path / "reg")),
            accountant=PrivacyAccountant(default_cap=cap),
            restarts=1, rng=0,
        )
        app = ServerApp(sess)
        schema = Schema.from_spec({"age": 8, "sex": ["M", "F"]})
        data = np.random.default_rng(5).poisson(
            20, schema.domain.shape()
        ).astype(float)
        kw = {"policy": policy} if policy is not None else {"epsilon_cap": cap}
        app.register("adult", schema, data, **kw)
        return app, sess

    def test_wire_gaussian_bit_identical_to_in_process(self, tmp_path):
        app, sess = self._make_app(tmp_path)
        payload = {
            "dataset": "adult",
            "queries": [{"marginal": ["age"]}, {"total": True}],
            "eps": 1.0, "seed": 42,
            "mechanism": "gaussian", "delta": 1e-6,
        }
        status, _, body = self._run(app.handle("POST", "/query", payload))
        assert status == 200
        body = json.loads(body)
        assert all(a["mechanism"] == "gaussian" for a in body["answers"])

        # The same request in-process at the same seed, on a fresh stack.
        sess2 = Session(
            registry=StrategyRegistry(str(tmp_path / "reg")),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1, rng=0,
        )
        schema = Schema.from_spec({"age": 8, "sex": ["M", "F"]})
        data = np.random.default_rng(5).poisson(
            20, schema.domain.shape()
        ).astype(float)
        ds2 = sess2.dataset("adult", schema=schema, data=data, epsilon_cap=50.0)
        ref = ds2.ask_many(
            [marginal("age"), total()], eps=1.0, rng=42,
            mechanism="gaussian", delta=1e-6,
        )
        for wire, ans in zip(body["answers"], ref):
            assert wire["values"] == [float(v) for v in ans.values]

    def test_parse_rejects_bad_mechanism_fields(self, tmp_path):
        app, _ = self._make_app(tmp_path)
        base = {"dataset": "adult", "queries": [{"total": True}], "eps": 1.0}
        for bad in (
            {"mechanism": "cauchy"},
            {"mechanism": "gaussian", "delta": 1.5},
            {"mechanism": "gaussian", "delta": 0},
            {"delta": 1e-6},  # delta without gaussian
        ):
            status, _, body = self._run(
                app.handle("POST", "/query", {**base, **bad})
            )
            assert status == 400, bad
            assert json.loads(body)["code"] == "bad_request"

    def test_403_reports_policy_and_native_remaining(self, tmp_path):
        app, _ = self._make_app(tmp_path, policy=ZCDPPolicy(0.05))
        payload = {
            "dataset": "adult", "queries": [{"marginal": ["age"]}],
            "eps": 1.0,  # Laplace ρ = 0.5 ≫ cap 0.05
        }
        status, _, body = self._run(app.handle("POST", "/query", payload))
        assert status == 403
        body = json.loads(body)
        assert body["code"] == "budget_exceeded"
        assert body["policy"] == "zcdp"
        assert set(body["remaining"]) == {"rho"}
        assert body["remaining"]["rho"] == pytest.approx(0.05)
        assert not body["retryable"]

    def test_403_pure_epsilon_body_keeps_legacy_fields(self):
        e = BudgetExceededError("adult", 5.0, 4.5, 2.0, "sequential")
        status, _, body = error_response(e)
        assert status == 403
        assert body["remaining_epsilon"] == pytest.approx(0.5)
        assert body["policy"] == "epsilon"
        assert body["remaining"] == {"epsilon": pytest.approx(0.5)}

    def test_gaussian_fits_where_zcdp_cap_refuses_laplace(self, tmp_path):
        # The native-ρ policy admits a Gaussian release after refusing a
        # Laplace one at the same ε — the planner-surfaced choice matters.
        app, sess = self._make_app(tmp_path, policy=ZCDPPolicy(0.05))
        base = {
            "dataset": "adult", "queries": [{"marginal": ["age"]}],
            "eps": 1.0, "seed": 7,
        }
        status, _, _ = self._run(app.handle("POST", "/query", base))
        assert status == 403
        status, _, body = self._run(
            app.handle(
                "POST", "/query",
                {**base, "mechanism": "gaussian", "delta": 1e-6},
            )
        )
        assert status == 200
        body = json.loads(body)
        assert body["charged"] == 1.0
        acct = sess.service.accountant
        assert acct.curve("adult").rho == pytest.approx(eps_to_rho(1.0, 1e-6))


def test_bench_mechanisms_smoke():
    """Every tier-1 run exercises the mechanisms benchmark at smoke
    size: the analytic rootmse predictions must stay calibrated against
    empirical trial RMSE for both mechanisms at equal budget, and the
    zCDP accounting fold's ε axis must stay bit-identical to the pure-ε
    fold under identical debit traffic."""
    import os
    import sys

    bench_dir = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        from bench_perf_regression import DEFAULT_JSON, bench_mechanisms
    finally:
        sys.path.remove(bench_dir)
    mc = bench_mechanisms(n=16, trials=10, n_debits=25)
    assert mc["predictions_calibrated"]
    assert mc["rmse_ratio_gaussian_vs_laplace"] != 1.0
    assert mc["noise_scale_ratio_gauss_vs_lap"] > 0.0
    assert mc["accounting"]["eps_fold_identical"]
    assert mc["accounting"]["delta_spent"] == pytest.approx(25 * 1e-6)
    assert mc["accounting"]["rho_spent"] == pytest.approx(
        25 * eps_to_rho(1.0 / 25, 1e-6)
    )
    # The committed trajectory must already carry a mechanisms record so
    # this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["mechanisms"]
    assert rec["predictions_calibrated"]
    assert rec["accounting"]["eps_fold_identical"]
    assert rec["trials"] >= 50
