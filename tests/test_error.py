"""Tests for the error metrics (Definition 7, Theorems 5/6)."""

import numpy as np
import pytest

from repro.core.error import (
    coherent_stack_error,
    error_ratio,
    expected_error,
    gram_inverse_trace,
    laplace_mechanism_error,
    rootmse,
    squared_error,
    supports,
    workload_marginal_traces,
)
from repro.domain import Domain
from repro.linalg import (
    Dense,
    Identity,
    Kronecker,
    MarginalsStrategy,
    Prefix,
    VStack,
    Weighted,
)
from repro.workload import k_way_marginals, prefix_2d, prefix_identity


class TestGramInverseTrace:
    def test_pd_case(self, rng):
        A = rng.standard_normal((8, 5))
        AtA = A.T @ A + 0.1 * np.eye(5)
        V = rng.standard_normal((5, 5))
        assert np.isclose(
            gram_inverse_trace(AtA, V), np.trace(np.linalg.inv(AtA) @ V)
        )

    def test_singular_falls_back_to_pinv(self, rng):
        A = np.zeros((3, 3))
        A[0, 0] = 1.0
        V = np.eye(3)
        assert np.isclose(gram_inverse_trace(A, V), 1.0)


class TestSupports:
    def test_identity_supports_everything(self, rng):
        W = Dense(rng.standard_normal((4, 6)))
        assert supports(W, Identity(6))

    def test_total_does_not_support_identity(self):
        from repro.linalg import Ones

        assert not supports(Identity(4), Ones(1, 4))


class TestSquaredErrorDispatch:
    def test_dense_matches_definition(self, rng):
        W = Dense(rng.standard_normal((6, 4)))
        A = Dense(rng.standard_normal((5, 4)) + 2.0)
        direct = (
            np.abs(A.dense()).sum(axis=0).max() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(squared_error(W, A), direct, rtol=1e-8)

    def test_kron_matches_dense(self, rng):
        W = prefix_2d(4)
        A = Kronecker([Dense(rng.random((5, 4)) + 0.5), Dense(rng.random((5, 4)) + 0.5)])
        direct = (
            A.sensitivity() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(squared_error(W, A), direct, rtol=1e-6)

    def test_union_workload_kron_strategy_theorem6(self, rng):
        W = prefix_identity(4)
        A = Kronecker([Dense(rng.random((5, 4)) + 0.5), Dense(rng.random((5, 4)) + 0.5)])
        direct = (
            A.sensitivity() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(squared_error(W, A), direct, rtol=1e-6)

    def test_weighted_strategy_error_invariant(self, rng):
        """Scaling a strategy rescales noise identically — same error."""
        W = prefix_2d(4)
        A = Kronecker([Dense(rng.random((5, 4)) + 0.5), Dense(rng.random((5, 4)) + 0.5)])
        assert np.isclose(squared_error(W, A), squared_error(W, Weighted(A, 7.0)))

    def test_marginals_strategy_matches_dense(self, rng):
        dom = Domain(["a", "b", "c"], [3, 2, 4])
        W = k_way_marginals(dom, 2)
        theta = rng.random(8) + 0.05
        A = MarginalsStrategy(dom.sizes, theta)
        direct = (
            A.sensitivity() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(squared_error(W, A), direct, rtol=1e-6)

    def test_marginals_singular_strategy_supported_workload(self, rng):
        """A 1-way-only strategy supports a 1-way workload; error must
        match the dense computation through the generalized inverse."""
        dom = Domain(["a", "b"], [3, 4])
        W = k_way_marginals(dom, 1)
        theta = np.array([0.0, 0.5, 0.5, 0.0])  # marginals {b} and {a}
        A = MarginalsStrategy(dom.sizes, theta)
        direct = (
            A.sensitivity() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(squared_error(W, A), direct, rtol=1e-6)


class TestEpsAndRatios:
    def test_expected_error_eps_scaling(self):
        W = Prefix(8)
        A = Identity(8)
        assert np.isclose(
            expected_error(W, A, eps=2.0), expected_error(W, A, eps=1.0) / 4.0
        )

    def test_rootmse(self):
        W = Prefix(8)
        A = Identity(8)
        assert np.isclose(
            rootmse(W, A, 1.0), np.sqrt(expected_error(W, A, 1.0) / 8)
        )

    def test_error_ratio_definition(self):
        W = Prefix(8)
        r = error_ratio(W, Identity(8), Identity(8))
        assert np.isclose(r, 1.0)


class TestLaplaceMechanismError:
    def test_formula(self):
        W = Prefix(8)
        assert np.isclose(
            laplace_mechanism_error(W), 8 * W.sensitivity() ** 2
        )


class TestCoherentStackError:
    def test_dense_path_matches_definition(self, rng):
        W = Prefix(8)
        A = VStack([Identity(8), Weighted(Prefix(8), 0.5)])
        direct = (
            A.sensitivity() ** 2
            * np.linalg.norm(W.dense() @ np.linalg.pinv(A.dense()), "fro") ** 2
        )
        assert np.isclose(coherent_stack_error(W, A), direct, rtol=1e-6)

    def test_stochastic_path_approximates_dense(self, rng):
        W = prefix_2d(6)
        A = VStack(
            [
                Kronecker([Identity(6), Identity(6)]),
                Weighted(Kronecker([Prefix(6), Prefix(6)]), 0.25),
            ]
        )
        exact = coherent_stack_error(W, A, dense_limit=8192)
        est = coherent_stack_error(W, A, dense_limit=1, probes=300, rng=0)
        assert abs(est - exact) / exact < 0.15


class TestMarginalTraces:
    def test_delta_values(self):
        dom = Domain(["a", "b"], [3, 4])
        W = k_way_marginals(dom, 2)  # the full contingency table: I ⊗ I
        delta = workload_marginal_traces(W)
        # For W = I⊗I: G_i = I; tr = n_i, sum = n_i.
        assert np.allclose(delta, [12, 12, 12, 12])

    def test_weighted_products_square(self):
        dom = Domain(["a", "b"], [3, 4])
        W1 = k_way_marginals(dom, 2)
        from repro.workload import weighted_union

        W2 = weighted_union([W1], [2.0])
        assert np.allclose(
            workload_marginal_traces(W2), 4 * workload_marginal_traces(W1)
        )
