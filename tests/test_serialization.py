"""Round-trip tests for the structural config serialization of linalg.

Property-style: every registered matrix class is instantiated, pushed
through config → JSON + npz → config → instance, and the rebuilt matrix
must preserve ``dense()``, ``gram().dense()`` and ``sensitivity()``
bit-for-bit (the registry's serve-ready contract)."""

import json

import numpy as np
import pytest

from repro.linalg import (
    AllRange,
    Dense,
    Diagonal,
    Identity,
    Kronecker,
    MarginalsGram,
    MarginalsStrategy,
    Matrix,
    Ones,
    Permuted,
    Prefix,
    Sum,
    VStack,
    Weighted,
    WidthRange,
    flatten_arrays,
    haar_wavelet,
    matrix_from_config,
    matrix_to_config,
    registered_types,
    restore_arrays,
)
from repro.optimize import PIdentity

_RNG = np.random.default_rng(2024)


def _instances():
    """One representative instance per serializable class (id = class name
    plus a disambiguating suffix for repeats)."""
    return [
        ("AllRange", AllRange(5)),
        ("Dense", Dense(_RNG.standard_normal((4, 3)))),
        ("Diagonal", Diagonal(_RNG.random(4) + 0.5)),
        ("Identity", Identity(5)),
        ("Kronecker", Kronecker([Prefix(3), Identity(2), Ones(1, 4)])),
        ("MarginalsGram", MarginalsGram((2, 3), _RNG.random(4))),
        ("MarginalsStrategy", MarginalsStrategy((2, 3), _RNG.random(4) + 0.1)),
        ("Ones", Ones(2, 4)),
        ("Permuted", Permuted(AllRange(4), _RNG.permutation(4))),
        ("PIdentity", PIdentity(_RNG.random((2, 5)))),
        ("Prefix", Prefix(6)),
        ("SparseMatrix", haar_wavelet(8)),
        ("Sum", Sum([Dense(np.eye(3)), Dense(np.ones((3, 3)))])),
        (
            "VStack",
            VStack(
                [
                    Weighted(Kronecker([AllRange(3), Ones(1, 2)]), 0.5),
                    Weighted(Kronecker([Ones(1, 3), AllRange(2)]), 0.5),
                ]
            ),
        ),
        ("Weighted", Weighted(Prefix(4), 0.3)),
        ("WidthRange", WidthRange(6, 2)),
        # Nested composites exercise recursive child configs.
        ("Weighted-nested", Weighted(Weighted(Identity(3), 2.0), 0.25)),
        ("VStack-pidentity", VStack([PIdentity(_RNG.random((1, 4))), Identity(4)])),
    ]


def _roundtrip(A: Matrix) -> Matrix:
    """config → flatten → JSON text → restore → instance, as the registry
    does (minus the npz file, covered separately)."""
    flat, arrays = flatten_arrays(matrix_to_config(A))
    cfg = restore_arrays(json.loads(json.dumps(flat)), arrays)
    return matrix_from_config(cfg)


@pytest.mark.parametrize(
    "A", [m for _, m in _instances()], ids=[k for k, _ in _instances()]
)
def test_roundtrip_preserves_structure(A):
    B = _roundtrip(A)
    assert type(B) is type(A)
    assert B.shape == A.shape
    assert np.array_equal(B.dense(), A.dense())
    assert np.array_equal(B.gram().dense(), A.gram().dense())
    assert B.sensitivity() == A.sensitivity()


def test_every_registered_type_is_exercised():
    covered = {type(m).__name__ for _, m in _instances()}
    assert covered == set(registered_types())


def test_npz_file_roundtrip(tmp_path):
    A = VStack(
        [
            Weighted(Kronecker([PIdentity(_RNG.random((2, 4))), Identity(3)]), 0.5),
            Weighted(Kronecker([Identity(4), PIdentity(_RNG.random((2, 3)))]), 0.5),
        ]
    )
    flat, arrays = flatten_arrays(matrix_to_config(A))
    path = tmp_path / "strategy.npz"
    np.savez(path, __config__=json.dumps(flat), **arrays)
    with np.load(path, allow_pickle=False) as npz:
        cfg = restore_arrays(json.loads(npz["__config__"].item()), npz)
    B = matrix_from_config(cfg)
    assert np.array_equal(B.dense(), A.dense())
    assert B.sensitivity() == A.sensitivity()


def test_unknown_type_rejected():
    with pytest.raises(ValueError, match="unknown matrix type"):
        matrix_from_config({"type": "NoSuchMatrix"})


def test_unserializable_class_raises():
    class Custom(Matrix):
        def __init__(self):
            self.shape = (1, 1)

        def matvec(self, x):
            return x

    with pytest.raises(NotImplementedError):
        Custom().to_config()


def test_flatten_restore_are_inverse_on_nested_trees():
    cfg = {
        "a": [np.arange(3.0), {"b": np.eye(2)}],
        "c": 1,
        "d": "s",
        "e": None,
        "f": 2.5,
    }
    flat, arrays = flatten_arrays(cfg)
    json.dumps(flat)  # must be JSON-ready
    back = restore_arrays(flat, arrays)
    assert np.array_equal(back["a"][0], cfg["a"][0])
    assert np.array_equal(back["a"][1]["b"], cfg["a"][1]["b"])
    assert back["c"] == 1 and back["d"] == "s" and back["e"] is None
    assert back["f"] == 2.5


def test_reprs_are_informative():
    """Satellite contract: reprs name structure, shape and dtype."""
    for _, A in _instances():
        r = repr(A)
        assert type(A).__name__ in r
        assert "float64" in r or "float64" in repr(getattr(A, "base", A))
