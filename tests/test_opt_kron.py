"""Tests for OPT_⊗ (Sections 6.1-6.2)."""

import math

import numpy as np
import pytest

from repro.core.error import squared_error
from repro.linalg import AllRange, Identity, Kronecker, Ones, Prefix
from repro.optimize import opt_0, opt_kron
from repro.optimize.opt_kron import default_p
from repro.workload import (
    all_range_2d,
    k_way_marginals,
    prefix_2d,
    prefix_identity,
    range_total_union,
)
from repro.domain import Domain


class TestDefaultP:
    def test_identity_gram_gets_p1(self):
        G = Identity(32).gram().dense()
        assert default_p([G], 32) == 1

    def test_total_gram_gets_p1(self):
        G = Ones(1, 32).gram().dense()
        assert default_p([G], 32) == 1

    def test_mixed_identity_total_gets_p1(self):
        """Grams of predicate sets within T ∪ I are aI + b1 — still p=1."""
        G = Identity(32).gram().dense() + Ones(1, 32).gram().dense()
        assert default_p([G], 32) == 1

    def test_range_gram_gets_n_over_16(self):
        G = AllRange(64).gram().dense()
        assert default_p([G], 64) == 4


class TestSingleProduct:
    def test_error_decomposition_theorem5(self):
        """‖(W1⊗W2)(A1⊗A2)⁺‖² = ‖W1A1⁺‖²·‖W2A2⁺‖²."""
        W = prefix_2d(8)
        res = opt_kron(W, rng=0)
        direct = squared_error(W, res.strategy)
        assert np.isclose(res.loss, direct, rtol=1e-6)

    def test_matches_independent_opt0(self):
        """For a single product the solution decomposes per attribute."""
        W = prefix_2d(8)
        res = opt_kron(W, ps=[1, 1], rng=0)
        r1 = opt_0(Prefix(8).gram().dense(), p=1, rng=0)
        # Same search problem per factor → product of losses is comparable.
        assert res.loss <= (r1.loss * 1.1) ** 2

    def test_strategy_is_sensitivity_one_kron(self):
        res = opt_kron(all_range_2d(8), rng=0)
        assert isinstance(res.strategy, Kronecker)
        assert np.isclose(res.strategy.sensitivity(), 1.0)

    def test_beats_identity(self):
        # At 64 cells per attribute (p=4) the p-Identity space contains
        # strategies clearly better than Identity (at n=16 it does not).
        W = all_range_2d(64)
        res = opt_kron(W, ps=[4, 4], rng=0)
        ident = Kronecker([Identity(64), Identity(64)])
        assert res.loss < squared_error(W, ident)


class TestUnionOfProducts:
    def test_loss_matches_theorem6(self):
        W = prefix_identity(8)
        res = opt_kron(W, rng=0)
        assert np.isclose(res.loss, squared_error(W, res.strategy), rtol=1e-6)

    def test_never_worse_than_identity(self):
        for W in [prefix_identity(8), range_total_union(8)]:
            res = opt_kron(W, rng=0)
            ident = Kronecker([Identity(8), Identity(8)])
            assert res.loss <= squared_error(W, ident) * (1 + 1e-6)

    def test_marginals_workload(self):
        dom = Domain(["a", "b", "c"], [4, 4, 4])
        W = k_way_marginals(dom, 2)
        res = opt_kron(W, rng=0)
        assert np.isclose(res.loss, squared_error(W, res.strategy), rtol=1e-6)

    def test_ps_length_validated(self):
        with pytest.raises(ValueError):
            opt_kron(prefix_2d(8), ps=[1, 1, 1])

    def test_weighted_union_respected(self, rng):
        """Heavier products must dominate the objective."""
        from repro.workload import weighted_union

        W_light = weighted_union([prefix_2d(8), all_range_2d(8)], [1.0, 1.0])
        W_heavy = weighted_union([prefix_2d(8), all_range_2d(8)], [1.0, 100.0])
        light = opt_kron(W_light, rng=0).loss
        heavy = opt_kron(W_heavy, rng=0).loss
        assert heavy > light * 100  # weights enter squared
