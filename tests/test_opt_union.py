"""Tests for OPT_+ (Definition 11)."""

import numpy as np

from repro.core.error import squared_error
from repro.linalg import VStack, Weighted
from repro.optimize import opt_kron, opt_union, partition_products
from repro.workload import (
    as_union_of_products,
    prefix_identity,
    range_total_union,
    union_kron,
)


class TestPartition:
    def test_groups_by_signature(self):
        W = range_total_union(8)  # (R x T) ∪ (T x R): two signatures
        parts = partition_products(W, groups=2)
        assert len(parts) == 2
        for part in parts:
            assert len(as_union_of_products(part)) == 1

    def test_single_signature_one_group(self):
        from repro.workload import prefix_2d

        parts = partition_products(prefix_2d(8), groups=2)
        assert len(parts) == 1

    def test_explicit_group_list_accepted(self):
        W = range_total_union(8)
        parts = partition_products(W, groups=2)
        res = opt_union(parts, rng=0)
        assert len(res.strategy.blocks) == 2


class TestOptUnion:
    def test_strategy_is_sensitivity_one_stack(self):
        res = opt_union(range_total_union(8), rng=0)
        assert isinstance(res.strategy, VStack)
        assert np.isclose(res.strategy.sensitivity(), 1.0)

    def test_blocks_are_weighted_products(self):
        res = opt_union(range_total_union(8), rng=0)
        for block in res.strategy.blocks:
            assert isinstance(block, Weighted)

    def test_beats_single_product_on_rt_union(self):
        """The motivating case of Section 6.2: (R x T) ∪ (T x R)."""
        W = range_total_union(16)
        union = opt_union(W, rng=0).loss
        single = opt_kron(W, rng=0).loss
        assert union < single

    def test_loss_matches_budget_split_estimate(self):
        W = range_total_union(8)
        res = opt_union(W, rng=0)
        assert np.isclose(res.loss, squared_error(W, res.strategy), rtol=1e-6)

    def test_prefix_identity_union(self):
        res = opt_union(prefix_identity(8), rng=0)
        assert res.loss > 0
