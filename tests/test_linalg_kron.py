"""Tests for Kronecker products and the kmatvec algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.linalg import Dense, Identity, Kronecker, Ones, Prefix, kmatvec


def explicit_kron(mats):
    out = mats[0]
    for M in mats[1:]:
        out = np.kron(out, M)
    return out


class TestKmatvec:
    @pytest.mark.parametrize(
        "shapes",
        [
            [(2, 3), (4, 5)],
            [(3, 3), (2, 4), (5, 2)],
            [(1, 4), (6, 2), (3, 3)],
            [(4, 4)],
            [(2, 2), (2, 2), (2, 2), (2, 2)],
        ],
    )
    def test_matches_explicit(self, shapes, rng):
        mats = [rng.standard_normal(s) for s in shapes]
        x = rng.standard_normal(int(np.prod([s[1] for s in shapes])))
        expected = explicit_kron(mats) @ x
        got = kmatvec([Dense(M) for M in mats], x)
        assert np.allclose(expected, got)

    def test_wrong_length_raises(self, rng):
        with pytest.raises(ValueError):
            kmatvec([Dense(rng.standard_normal((2, 3)))], np.zeros(4))


class TestKronecker:
    def test_shape(self):
        K = Kronecker([Dense(np.zeros((2, 3))), Dense(np.zeros((4, 5)))])
        assert K.shape == (8, 15)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Kronecker([])

    def test_rmatvec(self, rng):
        mats = [rng.standard_normal((3, 4)), rng.standard_normal((2, 5))]
        K = Kronecker([Dense(M) for M in mats])
        y = rng.standard_normal(6)
        assert np.allclose(K.rmatvec(y), explicit_kron(mats).T @ y)

    def test_gram_identity(self, rng):
        """WᵀW = W1ᵀW1 ⊗ W2ᵀW2 (Section 4.4)."""
        mats = [rng.standard_normal((3, 4)), rng.standard_normal((2, 5))]
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.allclose(K.gram().dense(), E.T @ E)

    def test_pinv_identity(self, rng):
        """(A1 ⊗ A2)⁺ = A1⁺ ⊗ A2⁺ (Section 4.4)."""
        mats = [rng.standard_normal((4, 3)), rng.standard_normal((5, 2))]
        K = Kronecker([Dense(M) for M in mats])
        assert np.allclose(K.pinv().dense(), np.linalg.pinv(explicit_kron(mats)))

    def test_sensitivity_theorem3(self, rng):
        """‖A1 ⊗ A2‖₁ = ‖A1‖₁·‖A2‖₁ (Theorem 3)."""
        mats = [np.abs(rng.standard_normal((3, 4))), np.abs(rng.standard_normal((2, 5)))]
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.isclose(K.sensitivity(), np.abs(E).sum(axis=0).max())

    def test_column_abs_sums(self, rng):
        mats = [rng.standard_normal((3, 4)), rng.standard_normal((2, 5))]
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.allclose(K.column_abs_sums(), np.abs(E).sum(axis=0))

    def test_transpose(self, rng):
        mats = [rng.standard_normal((3, 4)), rng.standard_normal((2, 5))]
        K = Kronecker([Dense(M) for M in mats])
        assert np.allclose(K.T.dense(), explicit_kron(mats).T)

    def test_trace_and_sum(self, rng):
        mats = [rng.standard_normal((4, 4)), rng.standard_normal((3, 3))]
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.isclose(K.trace(), np.trace(E))
        assert np.isclose(K.sum(), E.sum())

    def test_structured_factors(self, rng):
        """Kronecker works with implicit factors (Identity, Ones, Prefix)."""
        K = Kronecker([Identity(3), Ones(1, 4), Prefix(2)])
        x = rng.standard_normal(24)
        E = explicit_kron([np.eye(3), np.ones((1, 4)), np.tril(np.ones((2, 2)))])
        assert np.allclose(K.matvec(x), E @ x)
        assert K.sensitivity() == 1 * 1 * 2
