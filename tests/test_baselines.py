"""Tests for the data-independent baseline mechanisms."""

import numpy as np
import pytest

from repro import workload as wl
from repro.baselines import (
    HB,
    LRM,
    DataCube,
    GreedyH,
    IdentityMechanism,
    LaplaceMechanism,
    MatrixMechanism,
    Privelet,
    QuadTree,
    hb_branching,
)
from repro.core.error import squared_error
from repro.domain import Domain


class TestIdentityMechanism:
    def test_strategy_is_identity(self):
        A = IdentityMechanism().select(wl.prefix_1d(8))
        assert np.allclose(A.dense(), np.eye(8))

    def test_error_is_trace_of_gram(self):
        W = wl.prefix_1d(8)
        assert np.isclose(
            IdentityMechanism().squared_error(W), np.trace(W.gram().dense())
        )

    def test_multidimensional(self):
        W = wl.prefix_2d(4)
        A = IdentityMechanism().select(W)
        assert A.shape == (16, 16)

    def test_answer_runs(self, rng):
        W = wl.prefix_1d(8)
        ans = IdentityMechanism().answer(W, rng.poisson(10, 8).astype(float), 1.0, 0)
        assert ans.shape == (8,)


class TestLaplaceMechanism:
    def test_error_formula(self):
        W = wl.prefix_1d(8)
        assert np.isclose(
            LaplaceMechanism().squared_error(W), 8 * W.sensitivity() ** 2
        )

    def test_answer_is_direct_noise(self, rng):
        W = wl.prefix_1d(8)
        x = rng.poisson(10, 8).astype(float)
        ans = LaplaceMechanism().answer(W, x, eps=1e12, rng=0)
        assert np.allclose(ans, W.matvec(x), atol=1e-6)

    def test_lm_wins_tiny_workloads(self):
        """For a single total query LM is optimal — Identity is far worse."""
        from repro.workload import k_way_marginals

        dom = Domain(["a", "b"], [16, 16])
        W = k_way_marginals(dom, 0)
        assert (
            LaplaceMechanism().squared_error(W)
            < IdentityMechanism().squared_error(W)
        )


class TestPrivelet:
    def test_power_of_two_exact(self):
        A = Privelet().select(wl.prefix_1d(16))
        assert A.shape == (16, 16)
        assert A.sensitivity() == 5.0

    def test_non_power_of_two_padded(self):
        A = Privelet().select(wl.prefix_1d(12))
        assert A.shape[1] == 12
        # Strategy must still support the workload (full rank).
        assert np.linalg.matrix_rank(A.dense()) == 12

    def test_2d_kron_wavelet(self):
        A = Privelet().select(wl.prefix_2d(8))
        assert A.shape == (64, 64)

    def test_beats_identity_on_large_range_workload(self):
        # Wavelets win on large domains (paper Table 4a: at n=1024 the
        # Wavelet ratio 1.83 < Identity 2.36); at small n Identity wins.
        W = wl.all_range(1024)
        assert Privelet().squared_error(W) < IdentityMechanism().squared_error(W)


class TestHB:
    def test_branching_selection_reasonable(self):
        for n in [64, 256, 1024, 4096]:
            b = hb_branching(n)
            assert 2 <= b <= 32

    def test_fixed_branching_override(self):
        A = HB(branching=4).select(wl.prefix_1d(16))
        assert A.sensitivity() == 3.0  # 16, 4, 1

    def test_strategy_supports_workload(self):
        A = HB().select(wl.prefix_1d(32))
        assert np.linalg.matrix_rank(A.dense()) == 32

    def test_2d(self):
        A = HB().select(wl.prefix_2d(8))
        assert A.shape[1] == 64

    def test_competitive_on_ranges(self):
        W = wl.all_range(256)
        ratio = np.sqrt(
            HB().squared_error(W) / IdentityMechanism().squared_error(W)
        )
        assert ratio < 1.0  # HB beats Identity on large range workloads


class TestQuadTree:
    def test_requires_2d(self):
        with pytest.raises(ValueError):
            QuadTree().select(wl.prefix_1d(8))

    def test_levels_partition_domain(self):
        A = QuadTree().select(wl.prefix_2d(8))
        D = A.dense()
        # the finest level contains the identity over 64 cells
        assert np.linalg.matrix_rank(D) == 64

    def test_error_positive_and_finite(self):
        err = QuadTree().squared_error(wl.prefix_2d(8))
        assert np.isfinite(err) and err > 0


class TestGreedyH:
    def test_1d_only(self):
        with pytest.raises(ValueError):
            GreedyH().select(wl.prefix_2d(4))

    def test_supports_workload(self):
        A = GreedyH().select(wl.prefix_1d(16))
        assert np.linalg.matrix_rank(A.dense()) == 16

    def test_beats_unweighted_hb_on_prefix(self):
        W = wl.prefix_1d(128)
        assert GreedyH().squared_error(W) < HB(branching=2).squared_error(W) * 1.01

    def test_sensitivity_one(self):
        A = GreedyH().select(wl.prefix_1d(32))
        assert np.isclose(A.sensitivity(), 1.0)


class TestDataCube:
    def test_requires_marginal_workload(self):
        with pytest.raises(ValueError):
            DataCube().squared_error(wl.prefix_2d(4))

    def test_selects_superset_coverage(self):
        dom = Domain(["a", "b", "c"], [4, 4, 4])
        W = wl.k_way_marginals(dom, 1)
        err = DataCube().squared_error(W)
        assert np.isfinite(err) and err > 0

    def test_strategy_is_marginals(self):
        dom = Domain(["a", "b"], [4, 4])
        W = wl.k_way_marginals(dom, 1)
        A = DataCube().select(W)
        from repro.linalg import MarginalsStrategy

        assert isinstance(A, MarginalsStrategy)

    def test_full_table_workload_measures_full_table(self):
        dom = Domain(["a", "b"], [3, 3])
        W = wl.k_way_marginals(dom, 2)
        err_dc = DataCube().squared_error(W)
        # measuring the full table directly: error = cells = 9
        assert np.isclose(err_dc, 9.0)


class TestLRMAndMM:
    def test_lrm_runs_small(self):
        W = wl.prefix_1d(16)
        err = LRM(maxiter=200).squared_error(W)
        ident = IdentityMechanism().squared_error(W)
        assert err < ident * 1.5

    def test_lrm_infeasible_large(self):
        with pytest.raises(MemoryError):
            LRM().select(wl.prefix_1d(100_000))

    def test_mm_infeasible_beyond_toy(self):
        with pytest.raises(MemoryError):
            MatrixMechanism().select(wl.prefix_1d(512))

    def test_mm_runs_tiny(self):
        err = MatrixMechanism(restarts=1, maxiter=200).squared_error(wl.prefix_1d(8))
        assert np.isfinite(err) and err > 0
