"""Edge cases and failure injection across the library."""

import numpy as np
import pytest

from repro import HDMM, workload as wl
from repro.baselines import DAWA, DataCube
from repro.baselines.dawa import partition_costs
from repro.core.error import squared_error
from repro.core.measure import laplace_measure
from repro.domain import Domain
from repro.linalg import Identity, Kronecker, Ones, Prefix, VStack, Weighted
from repro.optimize import opt_0, opt_hdmm, opt_marginals


class TestDegenerateDomains:
    def test_size_one_attribute(self):
        dom = Domain(["a", "b"], [1, 4])
        W = wl.k_way_marginals(dom, 1)
        res = opt_hdmm(W, restarts=1, rng=0)
        assert np.isfinite(res.loss)

    def test_single_attribute_domain(self):
        dom = Domain(["a"], [8])
        W = wl.all_marginals(dom)
        res = opt_hdmm(W, restarts=1, rng=0)
        assert np.isfinite(res.loss)

    def test_single_cell_domain(self):
        W = Kronecker([Ones(1, 1)])
        mech = HDMM(restarts=1, rng=0).fit(W)
        ans = mech.run(np.array([5.0]), eps=100.0, rng=0)
        assert abs(ans[0] - 5.0) < 1.0

    def test_n2_prefix(self):
        res = opt_0(Prefix(2).gram().dense(), p=1, rng=0)
        assert np.isfinite(res.loss)


class TestWeightedWorkloads:
    def test_scaling_workload_scales_error(self):
        W = wl.prefix_1d(16)
        W2 = Weighted(W, 3.0)
        A = Identity(16)
        assert np.isclose(squared_error(W2, A), 9 * squared_error(W, A))

    def test_hdmm_on_weighted_workload(self):
        W = Weighted(wl.prefix_2d(8), 2.0)
        res = opt_hdmm(W, restarts=1, rng=0)
        assert np.isfinite(res.loss)


class TestNoiseEdgeCases:
    def test_zero_data_vector(self):
        W = wl.prefix_1d(8)
        mech = HDMM(restarts=1, rng=0).fit(W)
        ans = mech.run(np.zeros(8), eps=1.0, rng=0)
        assert ans.shape == (8,)

    def test_huge_counts_no_overflow(self):
        W = wl.prefix_1d(8)
        mech = HDMM(restarts=1, rng=0).fit(W)
        x = np.full(8, 1e12)
        ans = mech.run(x, eps=1.0, rng=0)
        assert np.all(np.isfinite(ans))

    def test_tiny_eps_still_runs(self):
        W = wl.prefix_1d(8)
        y = laplace_measure(Identity(8), np.ones(8), eps=1e-6, rng=0)
        assert np.all(np.isfinite(y))


class TestDAWAEdges:
    def test_domain_not_power_of_two(self):
        x = np.random.default_rng(0).random(100)
        _, buckets = partition_costs(x, penalty=0.5)
        assert buckets[-1][1] == 100

    def test_single_cell_buckets_possible(self):
        x = np.arange(16.0) ** 3  # wildly non-uniform
        _, buckets = partition_costs(x, penalty=1e-9)
        assert all(hi - lo == 1 for lo, hi in buckets)

    def test_whole_domain_one_bucket(self):
        x = np.full(32, 7.0)
        _, buckets = partition_costs(x, penalty=1e12)
        assert len(buckets) == 1

    def test_answer_on_all_zero_data(self):
        W = wl.prefix_1d(32)
        ans = DAWA().answer(W, np.zeros(32), eps=1.0, rng=0)
        assert np.all(np.isfinite(ans))


class TestDataCubeEdges:
    def test_total_only_workload(self):
        dom = Domain(["a", "b"], [4, 4])
        W = wl.k_way_marginals(dom, 0)
        err = DataCube().squared_error(W)
        assert np.isfinite(err)

    def test_weighted_marginals(self):
        dom = Domain(["a", "b"], [4, 4])
        W = wl.weighted_union(
            [wl.marginal(dom, ["a"]), wl.marginal(dom, ["b"])], [1.0, 10.0]
        )
        err = DataCube().squared_error(W)
        assert np.isfinite(err) and err > 0


class TestMarginalsEdges:
    def test_optm_single_attribute(self):
        dom = Domain(["a"], [12])
        W = wl.all_marginals(dom)
        res = opt_marginals(W, rng=0)
        assert np.isfinite(res.loss)

    def test_optm_with_weighted_workload(self):
        dom = Domain(["a", "b"], [4, 4])
        W = wl.weighted_union(
            [wl.marginal(dom, ["a"]), wl.k_way_marginals(dom, 2)], [5.0, 1.0]
        )
        res = opt_marginals(W, rng=0)
        assert np.isclose(res.loss, squared_error(W, res.strategy), rtol=1e-4)


class TestStrategySanity:
    def test_union_strategy_answers_unbiased(self, rng):
        """LSMR reconstruction through a stacked strategy stays unbiased."""
        from repro.optimize import opt_union

        W = wl.range_total_union(8)
        strategy = opt_union(W, rng=0).strategy
        x = rng.poisson(50, 64).astype(float)
        from repro.core.measure import laplace_measure
        from repro.core.reconstruct import answer_workload, least_squares

        estimates = []
        for s in range(120):
            y = laplace_measure(strategy, x, eps=2.0, rng=s)
            estimates.append(answer_workload(W, least_squares(strategy, y)))
        mean_est = np.mean(estimates, axis=0)
        truth = W.matvec(x)
        assert np.abs(mean_est - truth).max() < 0.15 * (np.abs(truth).max() + 1)
