"""Tests for logical workloads and ImpVec (Sections 3.3, 4.3)."""

import numpy as np
import pytest

from repro.domain import Domain
from repro.linalg import Kronecker, VStack, Weighted
from repro.workload import (
    LogicalWorkload,
    Product,
    as_union_of_products,
    implicit_vectorize,
    total_on,
    union_kron,
    workload_answers,
)
from repro.workload.predicates import (
    Equals,
    Range,
    identity_predicates,
    prefix_predicates,
)


@pytest.fixture
def dom():
    return Domain(["a", "b"], [3, 4])


class TestProduct:
    def test_unmentioned_attributes_get_total(self, dom):
        p = Product(dom, {"a": identity_predicates(3)})
        assert len(p.predicate_sets["b"]) == 1
        assert p.num_queries() == 3

    def test_num_queries_multiplies(self, dom):
        p = Product(
            dom, {"a": identity_predicates(3), "b": prefix_predicates(4)}
        )
        assert p.num_queries() == 12

    def test_unknown_attribute_rejected(self, dom):
        with pytest.raises(KeyError):
            Product(dom, {"z": [Equals(0)]})

    def test_empty_predicate_set_rejected(self, dom):
        with pytest.raises(ValueError):
            Product(dom, {"a": []})

    def test_vectorize_theorem2(self, dom):
        """vec(Φ x Ψ) = vec(Φ) ⊗ vec(Ψ)."""
        p = Product(dom, {"a": [Equals(1)], "b": [Range(0, 2)]})
        K = p.vectorize()
        expected = np.kron([[0, 1, 0]], [[1, 1, 1, 0]])
        assert np.allclose(K.dense(), expected)


class TestLogicalWorkload:
    def test_requires_products(self):
        with pytest.raises(ValueError):
            LogicalWorkload([])

    def test_mixed_domains_rejected(self, dom):
        other = Domain(["a", "b"], [3, 5])
        with pytest.raises(ValueError):
            LogicalWorkload([Product(dom, {}), Product(other, {})])

    def test_weights_validated(self, dom):
        with pytest.raises(ValueError):
            LogicalWorkload([Product(dom, {})], [0.0])
        with pytest.raises(ValueError):
            LogicalWorkload([Product(dom, {})], [1.0, 2.0])

    def test_union(self, dom):
        w1 = LogicalWorkload([Product(dom, {})])
        w2 = LogicalWorkload([Product(dom, {"a": identity_predicates(3)})], [2.0])
        u = w1.union(w2)
        assert len(u) == 2
        assert u.weights == [1.0, 2.0]

    def test_num_queries(self, dom):
        wl = LogicalWorkload(
            [Product(dom, {}), Product(dom, {"a": identity_predicates(3)})]
        )
        assert wl.num_queries() == 1 + 3


class TestImpVec:
    def test_single_product_is_kronecker(self, dom):
        wl = LogicalWorkload([Product(dom, {"a": identity_predicates(3)})])
        W = implicit_vectorize(wl)
        assert isinstance(W, Kronecker)

    def test_weighted_product_wrapped(self, dom):
        wl = LogicalWorkload([Product(dom, {})], [3.0])
        W = implicit_vectorize(wl)
        assert isinstance(W, Weighted)
        assert W.weight == 3.0

    def test_union_is_vstack(self, dom):
        wl = LogicalWorkload([Product(dom, {}), Product(dom, {})])
        assert isinstance(implicit_vectorize(wl), VStack)

    def test_matrix_matches_explicit_evaluation(self, dom, rng):
        wl = LogicalWorkload(
            [
                Product(dom, {"a": identity_predicates(3)}),
                Product(dom, {"b": prefix_predicates(4)}),
            ],
            [1.0, 2.0],
        )
        W = implicit_vectorize(wl)
        x = rng.poisson(10, 12).astype(float)
        answers = workload_answers(wl, x)
        X = x.reshape(3, 4)
        # First product: counts by a-value (3 queries).
        assert np.allclose(answers[:3], X.sum(axis=1))
        # Second product: weighted prefix counts over b.
        assert np.allclose(answers[3:], 2.0 * np.cumsum(X.sum(axis=0)))


class TestUnionKron:
    def test_assembles_weighted_terms(self, rng):
        from repro.linalg import Identity, Ones

        W = union_kron([(1.0, [Identity(3), Ones(1, 4)]), (2.0, [Ones(1, 3), Identity(4)])])
        terms = as_union_of_products(W)
        assert [w for w, _ in terms] == [1.0, 2.0]
        assert W.shape == (7, 12)

    def test_total_on(self):
        dom = Domain(["a", "b"], [3, 4])
        T = total_on(dom)
        assert T.shape == (1, 12)
        assert np.allclose(T.dense(), np.ones((1, 12)))
