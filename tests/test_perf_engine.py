"""Tests for the performance engine: parallel restarts, Gram caching, and
batched Kronecker matmat (kmatmat)."""

import numpy as np
import pytest

from repro.core.error import squared_error, workload_marginal_traces
from repro.domain import Domain
from repro.linalg import (
    AllRange,
    Dense,
    Identity,
    Kronecker,
    Ones,
    Prefix,
    Total,
    VStack,
    Weighted,
    WidthRange,
    cache_enabled,
    kmatmat,
    kmatvec,
    set_cache_enabled,
    set_dense_algebra_enabled,
)
from repro.linalg.marginals import MarginalsAlgebra
from repro.optimize import (
    opt_0,
    opt_general,
    opt_hdmm,
    opt_kron,
    opt_marginals,
    opt_union,
)
from repro.optimize.parallel import (
    PROCESS_SIZE_THRESHOLD,
    best_index,
    reduce_best,
    resolve_executor,
    resolve_workers,
    run_tasks,
    spawn_generators,
    spawn_seeds,
)
from repro.workload import k_way_marginals, prefix_identity, range_total_union
from repro.workload.util import as_union_of_products


class TestSeedSpawning:
    def test_spawn_deterministic_for_int_seed(self):
        a = [g.random(3) for g in spawn_generators(42, 4)]
        b = [g.random(3) for g in spawn_generators(42, 4)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_children_are_independent_streams(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_fresh_generators_with_same_seed_spawn_identically(self):
        a = [g.random(2) for g in spawn_generators(np.random.default_rng(7), 3)]
        b = [g.random(2) for g in spawn_generators(np.random.default_rng(7), 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_reused_generator_advances_between_calls(self):
        """Sharing one Generator across optimizer calls must keep giving
        fresh randomness (Monte-Carlo loops reuse a single stream)."""
        gen = np.random.default_rng(7)
        first = [g.random(2) for g in spawn_generators(gen, 2)]
        second = [g.random(2) for g in spawn_generators(gen, 2)]
        assert not np.allclose(first[0], second[0])

    def test_prefix_stability(self):
        """Child i does not depend on how many children are spawned after it."""
        few = spawn_seeds(5, 2)
        many = spawn_seeds(5, 6)
        assert few[0].entropy == many[0].entropy
        assert few[0].spawn_key == many[0].spawn_key
        assert few[1].spawn_key == many[1].spawn_key


class TestEngine:
    def test_run_tasks_preserves_payload_order(self):
        out = run_tasks(lambda x: x * 2, list(range(10)), workers=4)
        assert out == [x * 2 for x in range(10)]

    def test_best_index_min_loss_first_index_ties(self):
        assert best_index([3.0, 1.0, 1.0, 2.0]) == 1
        assert best_index([np.inf, np.nan]) is None
        assert best_index([]) is None

    def test_reduce_best_with_validity(self):
        assert reduce_best([-1.0, 2.0, 3.0], loss=lambda x: x,
                           valid=lambda l: l > 0) == 2.0

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(lambda x: x, [1, 2], workers=2, executor="gpu")
        with pytest.raises(ValueError):
            resolve_executor("gpu")


class TestAutoExecutor:
    """Satellite: executor="auto" picks processes only for large domains
    on multi-core hosts (the 1-CPU CI always records thread numbers)."""

    def test_explicit_choices_pass_through(self):
        assert resolve_executor("thread", size_hint=10**9) == "thread"
        assert resolve_executor("process", size_hint=1) == "process"

    def test_auto_defaults_to_threads(self):
        assert resolve_executor("auto") == "thread"
        assert resolve_executor("auto", size_hint=128) == "thread"

    def test_auto_large_domain_multicore(self, monkeypatch):
        import repro.optimize.parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 8)
        assert resolve_executor("auto", size_hint=PROCESS_SIZE_THRESHOLD) == "process"
        assert (
            resolve_executor("auto", size_hint=PROCESS_SIZE_THRESHOLD - 1)
            == "thread"
        )

    def test_auto_single_cpu_stays_threads(self, monkeypatch):
        import repro.optimize.parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 1)
        assert resolve_executor("auto", size_hint=PROCESS_SIZE_THRESHOLD) == "thread"

    def test_run_tasks_accepts_size_hint(self):
        out = run_tasks(
            lambda v: v * 2, [1, 2, 3], workers=2, size_hint=PROCESS_SIZE_THRESHOLD
        )
        assert out == [2, 4, 6]


class TestSameSeedDeterminism:
    """workers=1 and workers=4 must return bit-identical losses."""

    def test_opt_hdmm(self):
        W = prefix_identity(8)
        seq = opt_hdmm(W, restarts=3, rng=11, workers=1)
        par = opt_hdmm(W, restarts=3, rng=11, workers=4)
        assert seq.loss == par.loss

    def test_opt_0(self):
        V = AllRange(32).gram().dense()
        seq = opt_0(V, p=2, rng=3, restarts=4, workers=1).loss
        par = opt_0(V, p=2, rng=3, restarts=4, workers=4).loss
        assert seq == par

    def test_opt_0_process_executor(self):
        V = Prefix(16).gram().dense()
        seq = opt_0(V, p=1, rng=3, restarts=2, workers=1).loss
        par = opt_0(V, p=1, rng=3, restarts=2, workers=2,
                    executor="process").loss
        assert seq == par

    def test_opt_marginals(self):
        W = k_way_marginals(Domain(["a", "b", "c"], [4, 5, 3]), 2)
        seq = opt_marginals(W, rng=9, restarts=4, workers=1).loss
        par = opt_marginals(W, rng=9, restarts=4, workers=4).loss
        assert seq == par

    def test_opt_kron_and_union(self):
        W = range_total_union(8)
        assert opt_kron(W, rng=5, workers=1).loss == opt_kron(W, rng=5, workers=3).loss
        assert opt_union(W, rng=5, workers=1).loss == opt_union(W, rng=5, workers=3).loss

    def test_custom_unpicklable_operator_falls_back_to_threads(self):
        calls = []

        def op(w, rng):
            calls.append(1)
            return opt_kron(w, rng=rng)

        res = opt_hdmm(prefix_identity(8), restarts=2, rng=0, workers=2,
                       executor="process", operators=[("closure", op)])
        assert len(calls) == 2
        assert np.isfinite(res.loss)


class TestGramCaching:
    def test_gram_and_dense_cached_per_instance(self):
        P = Prefix(16)
        assert P.gram() is P.gram()
        assert P.gram().dense() is P.gram().dense()

    def test_cached_vs_fresh_squared_error_equal(self):
        W = k_way_marginals(Domain(["a", "b"], [6, 5]), 1)
        A = Kronecker([Identity(6), Identity(5)])
        warm1 = squared_error(W, A)
        warm2 = squared_error(W, A)  # fully cached second pass
        prev = set_cache_enabled(False)
        try:
            W_fresh = k_way_marginals(Domain(["a", "b"], [6, 5]), 1)
            cold = squared_error(W_fresh, Kronecker([Identity(6), Identity(5)]))
        finally:
            set_cache_enabled(prev)
        assert warm1 == warm2 == cold

    def test_cache_disabled_recomputes(self):
        prev = set_cache_enabled(False)
        try:
            assert not cache_enabled()
            P = Prefix(8)
            assert P.gram() is not P.gram()
        finally:
            set_cache_enabled(prev)
        assert cache_enabled()

    def test_union_of_products_memoized(self):
        W = range_total_union(8)
        assert as_union_of_products(W) is as_union_of_products(W)

    def test_marginal_traces_memoized_and_correct(self):
        W = k_way_marginals(Domain(["a", "b", "c"], [3, 4, 2]), 2)
        d1 = workload_marginal_traces(W)
        d2 = workload_marginal_traces(W)
        assert d1 is d2
        prev = set_cache_enabled(False)
        try:
            fresh = workload_marginal_traces(
                k_way_marginals(Domain(["a", "b", "c"], [3, 4, 2]), 2)
            )
        finally:
            set_cache_enabled(prev)
        assert np.allclose(d1, fresh)

    def test_pickle_drops_memo(self):
        import pickle

        P = Prefix(8)
        P.gram().dense()
        assert "_memo" in P.__dict__
        Q = pickle.loads(pickle.dumps(P))
        assert "_memo" not in Q.__dict__
        assert np.allclose(Q.gram().dense(), P.gram().dense())


class TestKmatmat:
    """kmatmat must agree with the per-column kmatvec loop."""

    @pytest.mark.parametrize(
        "factors",
        [
            [Prefix(5), Identity(3), Total(4)],
            [Total(6), AllRange(4)],
            [WidthRange(7, 3), Prefix(4), Identity(2)],
            [Ones(3, 5), Identity(2), Prefix(6)],
        ],
        ids=["prefix-id-total", "total-allrange", "width-prefix-id", "rect-id-prefix"],
    )
    def test_matches_column_loop(self, factors, rng):
        n = int(np.prod([A.shape[1] for A in factors]))
        X = rng.standard_normal((n, 7))
        ref = np.stack([kmatvec(factors, X[:, j]) for j in range(7)], axis=1)
        assert np.allclose(kmatmat(factors, X), ref)

    def test_dense_factor_mix(self, rng):
        factors = [Dense(rng.standard_normal((4, 7))), Prefix(3),
                   Dense(rng.standard_normal((5, 2)))]
        n = 7 * 3 * 2
        X = rng.standard_normal((n, 6))
        ref = np.stack([kmatvec(factors, X[:, j]) for j in range(6)], axis=1)
        assert np.allclose(kmatmat(factors, X), ref)

    def test_vector_input_falls_back_to_kmatvec(self, rng):
        factors = [Prefix(4), Identity(3)]
        x = rng.standard_normal(12)
        assert np.allclose(kmatmat(factors, x), kmatvec(factors, x))

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            kmatmat([Prefix(4), Identity(3)], np.ones((13, 2)))

    def test_kronecker_matmat_and_rmatmat(self, rng):
        K = Kronecker([Prefix(4), Total(3), Identity(2)])
        D = K.__class__.dense.__wrapped__(K)
        X = rng.standard_normal((K.shape[1], 5))
        Y = rng.standard_normal((K.shape[0], 5))
        assert np.allclose(K.matmat(X), D @ X)
        assert np.allclose(K.rmatmat(Y), D.T @ Y)

    def test_weighted_vstack_of_kron_matmat(self, rng):
        K1 = Kronecker([Prefix(3), Identity(4)])
        K2 = Kronecker([Total(3), AllRange(4)])
        W = VStack([Weighted(K1, 2.0), K2])
        X = rng.standard_normal((12, 5))
        assert np.allclose(W.matmat(X), W.dense() @ X)


class TestDenseMarginalsAlgebra:
    def test_dense_matches_sparse_everywhere(self, rng):
        alg = MarginalsAlgebra((3, 4, 2))
        u = rng.random(8) + 0.01
        v = rng.random(8)
        delta = rng.random(8)
        prev = set_dense_algebra_enabled(False)
        try:
            sparse = (
                alg.x_matrix(u).toarray(),
                alg.multiply_weights(u, v),
                alg.ginv_weights(u),
                alg.adjoint_solve(u, delta),
                alg.grad_dot(delta, v),
            )
        finally:
            set_dense_algebra_enabled(prev)
        assert np.allclose(sparse[0], alg.x_matrix_dense(u))
        assert np.allclose(sparse[1], alg.multiply_weights(u, v))
        assert np.allclose(sparse[2], alg.ginv_weights(u))
        assert np.allclose(sparse[3], alg.adjoint_solve(u, delta))
        assert np.allclose(sparse[4], alg.grad_dot(delta, v))


class TestOptGeneralFallback:
    def test_all_infinite_restarts_fall_back_to_identity(self, monkeypatch):
        import importlib

        og_module = importlib.import_module("repro.optimize.opt_general")
        monkeypatch.setattr(
            og_module,
            "general_loss_and_grad",
            lambda B, V: (np.inf, np.zeros_like(np.asarray(B))),
        )
        V = Prefix(4).gram().dense()
        res = opt_general(V, rng=0, restarts=2)
        assert np.isfinite(res.loss)
        assert np.isclose(res.loss, np.trace(V))
        A = res.strategy.dense()
        assert np.allclose(np.abs(A).sum(axis=0), 1.0)
