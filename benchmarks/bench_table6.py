"""Table 6: improving DAWA by swapping GreedyH for HDMM in stage 2.

For each of the five 1-D datasets (DPBench stand-ins, see DESIGN.md), two
data scales and several domain sizes, run original DAWA and DAWA+HDMM and
report min/median/max of the error ratio across datasets.  Paper
reference (ε = √2): min 1.04-1.45, median 1.12-1.80, max 1.44-2.28
depending on domain size and scale — i.e. HDMM's stage-2 always at least
matches GreedyH and often nearly halves the error.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, print_table
except ImportError:
    from common import FULL, print_table

from repro.baselines import DAWA
from repro.data import DPBENCH_1D
from repro.workload import prefix_1d

EPS = float(np.sqrt(2.0))
DOMAINS = [256, 1024, 4096] if FULL else [256, 1024]
SCALES = [1_000, 10_000_000] if FULL else [1_000, 1_000_000]
TRIALS = 25 if FULL else 6


def compute_ratios(n: int, scale: float, trials: int = TRIALS) -> list[float]:
    """Error ratio (original / modified) per dataset."""
    W = prefix_1d(n)
    ratios = []
    for seed, (name, gen) in enumerate(DPBENCH_1D.items()):
        x = gen(n, scale, seed)
        orig = DAWA(stage2="greedyh").estimate_squared_error(
            W, x, eps=EPS, trials=trials, rng=100 + seed
        )
        mod = DAWA(stage2="hdmm").estimate_squared_error(
            W, x, eps=EPS, trials=trials, rng=100 + seed
        )
        ratios.append(float(np.sqrt(orig / mod)))
    return ratios


def main() -> None:
    rows = []
    for n in DOMAINS:
        for scale in SCALES:
            r = compute_ratios(n, scale)
            rows.append(
                [n, f"{scale:g}", f"{min(r):.2f}", f"{np.median(r):.2f}",
                 f"{max(r):.2f}"]
            )
    print_table(
        "Table 6: DAWA / DAWA+HDMM error ratio over 5 datasets (ε=√2)",
        ["domain", "data size", "min", "median", "max"],
        rows,
    )


def test_bench_table6_hdmm_stage2_helps(benchmark):
    ratios = benchmark.pedantic(
        lambda: compute_ratios(256, 100_000, trials=4), rounds=1, iterations=1
    )
    # HDMM's stage 2 is at least comparable on every dataset and a clear
    # improvement somewhere (paper: max ratios 1.4-2.3).
    assert min(ratios) > 0.8
    assert max(ratios) > 1.02


if __name__ == "__main__":
    main()
