"""Figure 1d: runtime of MEASURE + RECONSTRUCT by strategy type.

Times the noise-addition and inference steps on strategies produced by
OPT_⊗, OPT_+ and OPT_M as the total domain size grows.  The paper's
observation: OPT_⊗ and OPT_M strategies scale to N ≈ 10^9 thanks to
closed-form implicit pseudo-inverses, while OPT_+ strategies stop an
order of magnitude earlier because inference needs iterative LSMR.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, Timer, print_table
except ImportError:
    from common import FULL, Timer, print_table

from repro import workload as wl
from repro.core.measure import laplace_measure
from repro.core.reconstruct import least_squares
from repro.data import synthetic_domain
from repro.optimize import opt_kron, opt_marginals, opt_union

DIMS = [2, 3, 4, 5, 6, 7, 8] if FULL else [2, 3, 4, 5]
N_PER_DIM = 16


def _measure_reconstruct_time(strategy, n_total: int) -> float:
    x = np.ones(n_total)
    with Timer() as t:
        y = laplace_measure(strategy, x, eps=1.0, rng=0)
        least_squares(strategy, y)
    return t.elapsed


def compute_rows() -> list[list[str]]:
    rows = []
    for d in DIMS:
        domain = synthetic_domain(d, N_PER_DIM)
        N = domain.size()
        W_kron = wl.prefix_2d(N_PER_DIM) if d == 2 else None
        # Build one workload per operator family over the same domain.
        W = wl.up_to_k_marginals(domain, min(2, d))
        kron = opt_kron(W, rng=0).strategy
        union = opt_union(W, rng=0, groups=2).strategy
        marg = opt_marginals(W, rng=0).strategy
        rows.append(
            [f"{N_PER_DIM}^{d}={N:.0e}",
             f"{_measure_reconstruct_time(kron, N):.3f}",
             f"{_measure_reconstruct_time(union, N):.3f}",
             f"{_measure_reconstruct_time(marg, N):.3f}"]
        )
    return rows


def main() -> None:
    print_table(
        "Figure 1d: measure+reconstruct time (s) by strategy type",
        ["N", "OPT_kron", "OPT_+", "OPT_M"], compute_rows(),
    )


def test_bench_fig1d_kron_reconstruct(benchmark):
    domain = synthetic_domain(4, 16)
    W = wl.up_to_k_marginals(domain, 2)
    strategy = opt_kron(W, rng=0).strategy
    N = domain.size()
    t = benchmark.pedantic(
        lambda: _measure_reconstruct_time(strategy, N), rounds=1, iterations=1
    )
    assert t < 30


def test_bench_fig1d_union_uses_lsmr(benchmark):
    domain = synthetic_domain(3, 16)
    W = wl.up_to_k_marginals(domain, 2)
    strategy = opt_union(W, rng=0).strategy
    N = domain.size()
    t = benchmark.pedantic(
        lambda: _measure_reconstruct_time(strategy, N), rounds=1, iterations=1
    )
    assert t < 60


if __name__ == "__main__":
    main()
