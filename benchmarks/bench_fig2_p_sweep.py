"""Figure 2 (Appendix C.1): OPT_0 error as a function of p.

All range queries on a domain of 256; p swept over powers of two.  Paper
shape: relative error ≈ 1.29 at p=1, dropping to ≈ 1.00 at p=16, flat
through p=128, degrading slightly when the space becomes too expressive
(poor local minima at p=256).  Doubles as the ablation for the p ≈ n/16
heuristic of Section 7.1.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, print_table
except ImportError:
    from common import FULL, print_table

from repro.linalg import AllRange
from repro.optimize import opt_0

N = 256
PS = [1, 2, 4, 8, 16, 32, 64, 128, 256] if FULL else [1, 2, 4, 8, 16, 32]
RESTARTS = 3 if FULL else 2


def sweep(ps=None) -> dict[int, float]:
    V = AllRange(N).gram().dense()
    losses = {p: opt_0(V, p=p, rng=0, restarts=RESTARTS).loss for p in (ps or PS)}
    return losses


def main() -> None:
    losses = sweep()
    best = min(losses.values())
    rows = [
        [p, f"{np.sqrt(loss / best):.3f}", f"{loss:.0f}"]
        for p, loss in losses.items()
    ]
    print_table(
        f"Figure 2: OPT_0 relative error vs p (All Range, n={N})",
        ["p", "relative error", "loss"], rows,
    )


def test_bench_fig2_p_sweep(benchmark):
    losses = benchmark.pedantic(
        lambda: sweep([1, 4, 16]), rounds=1, iterations=1
    )
    # The paper's U-shape: p=1 clearly worse than p=16; p=16 ≈ optimal.
    assert np.sqrt(losses[1] / losses[16]) > 1.1
    assert np.sqrt(losses[4] / losses[16]) < 1.35


if __name__ == "__main__":
    main()
