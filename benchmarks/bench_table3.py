"""Table 3: the headline accuracy comparison across all configurations.

Eleven workload configurations over five schemas, ε = 1.0.  Entries are
error ratios vs HDMM (= 1.00); ``*`` marks mechanisms that are infeasible
at the configuration (matching the paper's ``*``) and ``-`` mechanisms
not applicable.  Data-dependent entries (DAWA, PrivBayes) are Monte-Carlo
estimates on synthetic data vectors (DESIGN.md substitution).

Paper reference shapes: HDMM is 1.00 everywhere; the best competitor
ranges from 1.25 (GreedyH on Width 32 Range) to 3+ (Identity in high
dimensions); LM is orders of magnitude off on range-heavy workloads;
PrivBayes is far from competitive on SF1 (66,700x).
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, RESTARTS, fmt_ratio, print_table, ratio, try_mechanism
except ImportError:
    from common import FULL, RESTARTS, fmt_ratio, print_table, ratio, try_mechanism

from repro import workload as wl
from repro.baselines import (
    DAWA,
    DataCube,
    GreedyH,
    IdentityMechanism,
    LaplaceMechanism,
    PrivBayes,
    Privelet,
    QuadTree,
)
from repro.baselines import HB
from repro.data import (
    adult_domain,
    clustered_1d,
    correlated_tensor,
    cps_domain,
    spatial_2d,
)
from repro.optimize import opt_hdmm
from repro.workload import implicit_vectorize, sf1_workload

EPS = 1.0
PATENT_N = 1024 if FULL else 256
TAXI_N = 256 if FULL else 64
PB_TRIALS = 25 if FULL else 3
DAWA_TRIALS = 25 if FULL else 5


def _configs():
    """Yield (dataset, workload-name, W, applicable extras)."""
    yield ("Patent", "Width 32 Range", wl.width_range(PATENT_N, 32), "1d")
    yield ("Patent", "Prefix 1D", wl.prefix_1d(PATENT_N), "1d")
    yield ("Patent", "Permuted Range", wl.permuted_range(PATENT_N, seed=7), "1d-slow")
    yield ("Taxi", "Prefix Identity", wl.prefix_identity(TAXI_N), "2d")
    yield ("Taxi", "Prefix 2D", wl.prefix_2d(TAXI_N), "2d")
    yield ("CPH", "SF1", implicit_vectorize(sf1_workload()), "highd-pb")
    yield ("CPH", "SF1+", implicit_vectorize(sf1_workload(plus=True)), "highd")
    yield ("Adult", "All Marginals", wl.all_marginals(adult_domain()), "marg-pb")
    yield ("Adult", "2-way Marginals", wl.k_way_marginals(adult_domain(), 2), "marg-pb")
    yield (
        "CPS",
        "All Range-Marginals",
        wl.range_marginals(cps_domain(), numeric={"income", "age"}),
        "highd-pb-cps",
    )
    yield (
        "CPS",
        "2-way Range-Marginals",
        wl.range_marginals(cps_domain(), numeric={"income", "age"}, k=2),
        "highd-pb-cps",
    )


def _data_vector(dataset: str, W) -> np.ndarray:
    if dataset == "Patent":
        return clustered_1d(PATENT_N, scale=100_000, rng=0)
    if dataset == "Taxi":
        return spatial_2d(TAXI_N, TAXI_N, scale=500_000, rng=0)
    if dataset == "Adult":
        return correlated_tensor(adult_domain(), scale=30_000, rng=0)
    if dataset == "CPS":
        return correlated_tensor(cps_domain(), scale=50_000, rng=0)
    raise KeyError(dataset)


def compute_row(dataset: str, name: str, W, kind: str) -> dict:
    hdmm_loss = opt_hdmm(W, restarts=RESTARTS, rng=0).loss
    hdmm_expected = 2.0 / EPS**2 * hdmm_loss
    row: dict = {"dataset": dataset, "workload": name, "HDMM": 1.0}
    row["Identity"] = ratio(IdentityMechanism().squared_error(W), hdmm_loss)
    row["LM"] = ratio(LaplaceMechanism().squared_error(W), hdmm_loss)

    row["Privelet"] = row["HB"] = row["QuadTree"] = row["GreedyH"] = None
    row["DAWA"] = row["DataCube"] = row["PrivBayes"] = None

    if kind.startswith("1d"):
        row["Privelet"] = try_mechanism(
            lambda: ratio(Privelet().squared_error(W), hdmm_loss)
        )
        row["HB"] = try_mechanism(lambda: ratio(HB().squared_error(W), hdmm_loss))
        row["GreedyH"] = try_mechanism(
            lambda: ratio(GreedyH().squared_error(W), hdmm_loss)
        )
        if kind == "1d":  # DAWA timed out on Permuted Range in the paper too
            x = _data_vector(dataset, W)
            est = DAWA().estimate_squared_error(W, x, EPS, DAWA_TRIALS, rng=1)
            row["DAWA"] = ratio(est, hdmm_expected)
    elif kind == "2d":
        row["Privelet"] = try_mechanism(
            lambda: ratio(Privelet().squared_error(W), hdmm_loss)
        )
        row["HB"] = try_mechanism(lambda: ratio(HB().squared_error(W), hdmm_loss))
        row["QuadTree"] = try_mechanism(
            lambda: ratio(QuadTree().squared_error(W), hdmm_loss)
        )
    elif kind.startswith("marg"):
        row["DataCube"] = try_mechanism(
            lambda: ratio(DataCube().squared_error(W), hdmm_loss)
        )

    if "pb" in kind and dataset in ("Adult", "CPS"):
        domain = adult_domain() if dataset == "Adult" else cps_domain()
        x = _data_vector(dataset, W)
        est = PrivBayes(domain).estimate_squared_error(W, x, EPS, PB_TRIALS, rng=2)
        row["PrivBayes"] = ratio(est, hdmm_expected)
    elif "pb" in kind and dataset == "CPH":
        from repro.workload import cph_domain

        x = correlated_tensor(cph_domain(), scale=200_000, rng=0)
        est = PrivBayes(cph_domain(), degree=1).estimate_squared_error(
            W, x, EPS, trials=1 if not FULL else 5, rng=2
        )
        row["PrivBayes"] = ratio(est, hdmm_expected)
    return row


COLUMNS = [
    "Identity", "LM", "HDMM", "Privelet", "HB", "QuadTree", "GreedyH",
    "DAWA", "DataCube", "PrivBayes",
]


def main() -> None:
    rows = []
    for dataset, name, W, kind in _configs():
        r = compute_row(dataset, name, W, kind)
        rows.append(
            [dataset, name]
            + [fmt_ratio(r.get(c)) if r.get(c) is not None else "   -  "
               for c in COLUMNS]
        )
    print_table(
        "Table 3: error ratios vs HDMM (ε=1.0; '-' = not applicable)",
        ["Dataset", "Workload"] + COLUMNS,
        rows,
    )


def test_bench_table3_patent_prefix(benchmark):
    row = benchmark.pedantic(
        lambda: compute_row("Patent", "Prefix 1D", wl.prefix_1d(PATENT_N), "1d"),
        rounds=1,
        iterations=1,
    )
    # Paper: Identity 3.34, LM 151, HDMM 1.0.
    assert row["Identity"] > 1.5
    assert row["LM"] > 20
    assert row["GreedyH"] is not None and row["GreedyH"] > 0.99


def test_bench_table3_sf1(benchmark):
    W = implicit_vectorize(sf1_workload())
    row = benchmark.pedantic(
        lambda: {
            "Identity": ratio(
                IdentityMechanism().squared_error(W),
                opt_hdmm(W, restarts=1, rng=0).loss,
            )
        },
        rounds=1,
        iterations=1,
    )
    # Paper: Identity 3.07 on SF1 — HDMM wins clearly.
    assert row["Identity"] > 1.3


def test_bench_table3_adult_marginals(benchmark):
    W = wl.k_way_marginals(adult_domain(), 2)
    def run():
        hdmm = opt_hdmm(W, restarts=2, rng=0).loss
        return {
            "Identity": ratio(IdentityMechanism().squared_error(W), hdmm),
            "LM": ratio(LaplaceMechanism().squared_error(W), hdmm),
            "DataCube": ratio(DataCube().squared_error(W), hdmm),
        }
    row = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper: Identity 5.30, LM 2.11, DataCube 2.01 — all above 1.
    assert min(row.values()) > 0.99


if __name__ == "__main__":
    main()
