"""Figure 3 (Appendix C.2): distribution of local minima across restarts.

Runs OPT_0 on the all-range workload (n=256) and OPT_M on up-to-4-way
marginals (8-D domain) with many random restarts and reports the
distribution of the locally-optimal losses relative to the best found.
Paper shape: the range-query distribution is tightly concentrated (no
restarts needed); the marginals distribution spreads more, but ~25% of
restarts land within 1.05x of the best — a handful of restarts suffice.
This is the ablation for the restart parameter S of Algorithm 2.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, print_table
except ImportError:
    from common import FULL, print_table

from repro import workload as wl
from repro.data import synthetic_domain
from repro.linalg import AllRange
from repro.optimize import opt_0, opt_marginals

RESTARTS = 100 if FULL else 20
RANGE_N = 256 if FULL else 128


def range_minima(restarts=RESTARTS) -> np.ndarray:
    V = AllRange(RANGE_N).gram().dense()
    return np.array(
        [opt_0(V, rng=s, restarts=1).loss for s in range(restarts)]
    )


def marginal_minima(restarts=RESTARTS) -> np.ndarray:
    domain = synthetic_domain(8, 10)
    W = wl.up_to_k_marginals(domain, 4)
    return np.array(
        [opt_marginals(W, rng=s, restarts=1).loss for s in range(restarts)]
    )


def _summary(losses: np.ndarray) -> list[str]:
    rel = np.sqrt(losses / losses.min())
    return [
        f"{rel.min():.3f}",
        f"{np.median(rel):.3f}",
        f"{rel.max():.3f}",
        f"{(rel <= 1.05).mean() * 100:.0f}%",
    ]


def main() -> None:
    rows = [
        ["Range queries (OPT_0)"] + _summary(range_minima()),
        ["Marginals (OPT_M)"] + _summary(marginal_minima()),
    ]
    print_table(
        f"Figure 3: local-minima distribution over {RESTARTS} restarts "
        "(relative error vs best)",
        ["Optimization", "min", "median", "max", "within 1.05x"],
        rows,
    )


def test_bench_fig3_range_concentrated(benchmark):
    losses = benchmark.pedantic(
        lambda: range_minima(restarts=8), rounds=1, iterations=1
    )
    rel = np.sqrt(losses / losses.min())
    # Paper: the range-query distribution is "very concentrated".
    assert np.median(rel) < 1.05


def test_bench_fig3_marginals_handful_suffices(benchmark):
    losses = benchmark.pedantic(
        lambda: marginal_minima(restarts=8), rounds=1, iterations=1
    )
    losses = losses[np.isfinite(losses)]
    rel = np.sqrt(losses / losses.min())
    # The marginals distribution spreads more than the range-query one,
    # but a meaningful fraction of restarts lands near the best (paper:
    # ~25% within 1.05; our measured spread is documented in
    # EXPERIMENTS.md).
    assert rel.min() < 1.02
    assert (rel <= 1.15).mean() >= 0.25


if __name__ == "__main__":
    main()
