"""Figures 1a-1c: strategy-selection scalability vs domain size.

* Fig 1a — Prefix 1D: LRM, GreedyH, HDMM.  All need the explicit workload
  (Gram) so none scales past N ≈ 10^4; HDMM sits between GreedyH (faster)
  and LRM (slower).
* Fig 1b — Prefix 3D: LRM vs HDMM.  HDMM solves three small problems
  (OPT_⊗) instead of one large one and scales far further.
* Fig 1c — 3-way marginals, 8-D: DataCube vs HDMM.  Both scale well;
  DataCube is faster on small domains (no restarts), HDMM reaches larger N.

Each series reports wall-clock seconds for strategy selection; a row is
dropped once it exceeds the timeout (the paper used 30 minutes; default
here is 60 s, REPRO_FULL raises it).
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, Timer, print_table
except ImportError:
    from common import FULL, Timer, print_table

from repro import workload as wl
from repro.baselines import DataCube, GreedyH, LRM
from repro.data import synthetic_domain
from repro.optimize import opt_hdmm

TIMEOUT = 1800.0 if FULL else 300.0
SIZES_1D = [256, 1024, 4096, 8192] if FULL else [256, 1024]
SIZES_3D = [8, 16, 32, 64, 128] if FULL else [8, 16, 32]
SIZES_8D = [4, 6, 8, 10] if FULL else [4, 6, 8]


def _timed(fn) -> float | None:
    try:
        with Timer() as t:
            fn()
    except (MemoryError, ValueError):
        return None
    return t.elapsed if t.elapsed <= TIMEOUT else None


def fig1a() -> list[list[str]]:
    rows = []
    alive = {"LRM": True, "GreedyH": True, "HDMM": True}
    for n in SIZES_1D:
        W = wl.prefix_1d(n)
        times = {}
        if alive["LRM"]:
            times["LRM"] = _timed(lambda: LRM(maxiter=100).select(W))
            alive["LRM"] = times["LRM"] is not None
        if alive["GreedyH"]:
            times["GreedyH"] = _timed(lambda: GreedyH(maxiter=50).select(W))
            alive["GreedyH"] = times["GreedyH"] is not None
        if alive["HDMM"]:
            times["HDMM"] = _timed(lambda: opt_hdmm(W, restarts=1, rng=0))
            alive["HDMM"] = times["HDMM"] is not None
        rows.append(
            [n] + [f"{times.get(k):.2f}" if times.get(k) else "timeout/oom"
                   for k in ("LRM", "GreedyH", "HDMM")]
        )
    return rows


def fig1b() -> list[list[str]]:
    rows = []
    for n in SIZES_3D:
        W = wl.prefix_3d(n)
        lrm = _timed(lambda: LRM(maxiter=100).select(W)) if n**3 <= 16384 else None
        hdmm = _timed(lambda: opt_hdmm(W, restarts=1, rng=0))
        rows.append(
            [f"{n}^3={n**3}",
             f"{lrm:.2f}" if lrm else "timeout/oom",
             f"{hdmm:.2f}" if hdmm else "timeout/oom"]
        )
    return rows


def fig1c() -> list[list[str]]:
    rows = []
    for n in SIZES_8D:
        domain = synthetic_domain(8, n)
        W = wl.k_way_marginals(domain, 3)
        dc = _timed(lambda: DataCube().squared_error(W))
        hdmm = _timed(lambda: opt_hdmm(W, restarts=1, rng=0))
        rows.append(
            [f"{n}^8={n**8:.0e}",
             f"{dc:.2f}" if dc else "timeout/oom",
             f"{hdmm:.2f}" if hdmm else "timeout/oom"]
        )
    return rows


def main() -> None:
    print_table("Figure 1a: Prefix 1D selection time (s)",
                ["N", "LRM", "GreedyH", "HDMM"], fig1a())
    print_table("Figure 1b: Prefix 3D selection time (s)",
                ["N", "LRM", "HDMM"], fig1b())
    print_table("Figure 1c: 3-way marginals 8D selection time (s)",
                ["N", "DataCube", "HDMM"], fig1c())


def test_bench_fig1a_ordering(benchmark):
    n = 512
    W = wl.prefix_1d(n)
    t_lrm = _timed(lambda: LRM(maxiter=100).select(W))
    t_hdmm = benchmark.pedantic(
        lambda: _timed(lambda: opt_hdmm(W, restarts=1, rng=0)),
        rounds=1, iterations=1,
    )
    # HDMM is faster than LRM at the same domain size (Fig 1a ordering).
    assert t_hdmm is not None
    assert t_lrm is None or t_hdmm < t_lrm


def test_bench_fig1b_hdmm_scales_past_lrm(benchmark):
    n = 32  # N = 32768: LRM needs a dense 32768² optimization — infeasible
    W = wl.prefix_3d(n)
    t_hdmm = benchmark.pedantic(
        lambda: _timed(lambda: opt_hdmm(W, restarts=1, rng=0)),
        rounds=1, iterations=1,
    )
    assert t_hdmm is not None
    with pytest.raises(MemoryError):
        LRM().select(W)


if __name__ == "__main__":
    main()
