"""Shared helpers for the benchmark harness.

Every bench module reproduces one table or figure of the paper.  Each has

* a ``main()`` that prints the paper-style rows (run the module directly);
* ``test_*`` functions exercising the same computation under
  ``pytest --benchmark-only`` with assertions on the qualitative shape
  (who wins, roughly by how much).

Default problem sizes are scaled down so the whole harness completes on a
laptop; set ``REPRO_FULL=1`` to run the paper's sizes.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Restarts for strategy selection in benches (paper uses 25; it observes
#: far fewer suffice — Section 8.1 / Figure 3).
RESTARTS = 25 if FULL else 2


def ratio(err: float, base: float) -> float:
    """Paper error ratio: sqrt(Err_other / Err_base)."""
    return math.sqrt(err / base)


def fmt_ratio(r: float | None) -> str:
    if r is None:
        return "   *  "
    if r >= 10000:
        return f"{r:6.3g}"
    return f"{r:6.2f}"


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


class Timer:
    """Wall-clock context manager for scalability figures."""

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self.start
        return False


def try_mechanism(fn, timeout_hint: float | None = None):
    """Run an error computation, mapping infeasibility to None (the paper's
    ``*`` entries)."""
    try:
        return fn()
    except (MemoryError, ValueError, NotImplementedError):
        return None
