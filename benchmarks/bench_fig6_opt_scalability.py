"""Figure 6 (Appendix C.5): scalability of OPT_0 and OPT_M in isolation.

* OPT_0 time vs domain size n (paper: < 10 s at n = 1024, feasible to
  n = 8192);
* OPT_M time vs the number of dimensions d (paper: < 10 s at d = 10,
  feasible to d = 14; *independent of the attribute domain sizes*).
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, Timer, print_table
except ImportError:
    from common import FULL, Timer, print_table

from repro import workload as wl
from repro.data import synthetic_domain
from repro.linalg import AllRange
from repro.optimize import opt_0, opt_marginals

OPT0_SIZES = [128, 256, 512, 1024, 2048, 4096, 8192] if FULL else [128, 256, 512, 1024]
OPTM_DIMS = [2, 4, 6, 8, 10, 12, 14] if FULL else [2, 4, 6, 8, 10]


def opt0_times() -> list[list[str]]:
    rows = []
    for n in OPT0_SIZES:
        V = AllRange(n).gram().dense()
        with Timer() as t:
            opt_0(V, rng=0)
        rows.append([n, f"{t.elapsed:.2f}"])
    return rows


def optm_times() -> list[list[str]]:
    rows = []
    for d in OPTM_DIMS:
        domain = synthetic_domain(d, 10)
        W = wl.up_to_k_marginals(domain, min(3, d))
        with Timer() as t:
            opt_marginals(W, rng=0)
        rows.append([d, f"{t.elapsed:.2f}"])
    return rows


def main() -> None:
    print_table("Figure 6 (left): OPT_0 time vs domain size",
                ["n", "time (s)"], opt0_times())
    print_table("Figure 6 (right): OPT_M time vs dimensions (n_i = 10)",
                ["d", "time (s)"], optm_times())


def test_bench_fig6_opt0_scaling(benchmark):
    def run():
        V = AllRange(512).gram().dense()
        with Timer() as t:
            opt_0(V, rng=0)
        return t.elapsed
    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert elapsed < 120


def test_bench_fig6_optm_domain_size_independent(benchmark):
    """OPT_M cost depends on d, not on the attribute sizes (Section 6.3)."""
    def run(n_per_dim):
        domain = synthetic_domain(6, n_per_dim)
        W = wl.up_to_k_marginals(domain, 2)
        with Timer() as t:
            opt_marginals(W, rng=0)
        return t.elapsed
    t_small = benchmark.pedantic(lambda: run(4), rounds=1, iterations=1)
    t_large = run(64)
    # A 16x larger per-attribute domain costs roughly the same.
    assert t_large < 10 * max(t_small, 0.05)


if __name__ == "__main__":
    main()
