"""Performance regression benchmark for the optimization engine.

Times the two hot paths this repo's perf engine accelerates and records a
machine-readable trajectory in ``BENCH_PERF.json`` so future PRs can
regress against it:

* ``opt_hdmm`` on a Table-3-style multi-attribute workload (Adult 2-way
  marginals — five attributes, 190 union terms), comparing the engine
  (``workers=4``, Gram caching, dense marginals algebra) against the
  *seed-equivalent path*: sequential execution with the structural-result
  cache disabled (``set_cache_enabled(False)``) and the marginals algebra
  forced onto its sparse/loop code path
  (``set_dense_algebra_enabled(False)``) — the code path the seed commit
  executed on every restart.  The engine must also return a loss equal to
  its own ``workers=1`` run for the same seed (the determinism contract).
* ``kmatmat`` — Algorithm 1 with a trailing batch axis — applying a
  3-factor Kronecker product to a 64-column right-hand side at n = 4096,
  against the seed's per-column ``kmatvec`` loop (what ``Matrix.matmat``
  did before Kronecker gained a batched override).
* **serving** (PR 2) — a batched 20-trial x 5-ε sweep on a
  union-of-Kronecker strategy (``HDMM.run_batch``: one measurement
  mat-vec, spawned per-trial noise, the structured two-term union Gram
  inverse / batched CG, batched workload answering) against the
  *seed-equivalent single-shot loop*: per-trial ``laplace_measure`` +
  cold LSMR + ``answer_workload``, the code path the seed commit served
  unions with.  Also records the post-PR single-shot loop (same solver,
  one trial at a time) and the determinism contract: ``exact=True``
  batched answers must be **bit-identical** to that loop at the same
  spawned seeds.

* **service** (PR 3) — the strategy registry and query service: a cold
  ``QueryService.prepare`` (fit + persist) vs a warm one (fingerprint
  lookup + npz load with the solver factorization attached) on a fresh
  process-equivalent, plus the latency of a zero-budget ad-hoc query
  served from the cached reconstruction.  The recorded
  ``warm_load_speedup`` is the amortization the registry buys every
  process after the first.

* **serving_multiblock** (PR 4) — the L ≥ 3 union Gram solver: an
  SF-1-style ``opt_union(groups=4)`` strategy over a ≥ 4096 domain
  served through a 20-trial x 5-ε sweep, comparing the pre-PR cold-CG
  path (plain CG from scratch per column) against the new auto path
  (dominant-pair preconditioner + warm starts + Ritz-vector subspace
  recycling on cold solves).  Records iteration counts with/without
  preconditioning and recycling, the LSMR cross-check deviation, and the
  ``exact=True`` same-seed determinism contract for recycled solves.

* **accelerator** (PR 7) — the O(1) read path: a summed-area table over
  the cached reconstruction answers axis-aligned range queries by
  2^k-corner gathers instead of span-projection + matvec.  Records the
  single-free-hit latency (gather core and end-to-end ``query()``) vs
  the pre-PR per-hit span projection, the batched range-answer rate of
  the vectorized corner gather (target ≥ 100k answers/s), and the
  amortized costs the route pays once per reconstruction: table build,
  persist, and checksummed reload.

* **observability** (PR 8) — the telemetry tax: the instrumented
  free-hit serve with metrics and tracing *disabled* vs a replica of the
  uninstrumented hit loop (must stay within 3%), plus the recorded price
  of enabling the full span tree + labelled counters per request, and
  structural checks that an enabled batch yields a complete trace and
  exact ``service.answers_total`` counts.

* **server** (PR 9) — the resilient HTTP front-end: per-request latency
  of the free path through the full asyncio stack (p50/p99 over
  keep-alive), free-hit throughput with HTTP/1.1 pipelining on one
  socket (target ≥ 10k requests/s), measured-path latency, and the
  shed behavior under 2x overload — every refused request must be a
  structured 429/503 with ``Retry-After``, and the admitted ones must
  all complete.

* **mechanisms** (PR 10) — the mechanism subsystem: Gaussian vs Laplace
  serving the same strategy at equal per-release budget — analytic
  ``rootmse`` predictions next to empirical trial RMSE for both (the
  predictions must stay calibrated), the noise-scale ratio σ/b behind
  the gap, and the accounting tax of the full zCDP fold (ε, δ, ρ
  accumulated per debit, policy-checked) vs the pure-ε sum — whose ε
  axis must stay **bit-identical** between the two folds.

* **durability** (PR 6) — the crash-consistency tax: per-debit overhead
  of the fsync'd write-ahead ε-ledger vs the in-memory accountant,
  replay rate of :meth:`PrivacyAccountant.recover` (with a torn-tail
  truncation check), and the share of a warm registry load now spent on
  the SHA-256 checksum verify.  The smoke test replays a ledger on every
  tier-1 run so recovery cannot silently rot.

Run directly for the paper-style report; ``--quick`` shrinks restarts and
repetitions for smoke runs (and regresses the serving speedup against the
previously recorded ``BENCH_PERF.json``); ``--json`` controls the output
path.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

try:
    from .common import Timer, print_table
except ImportError:
    from common import Timer, print_table

from repro.data import adult_domain
from repro.linalg import (
    Dense,
    Identity,
    Prefix,
    Total,
    kmatmat,
    kmatvec,
    set_cache_enabled,
    set_dense_algebra_enabled,
)
from repro.optimize import opt_hdmm
from repro.workload import k_way_marginals

DEFAULT_JSON = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_PERF.json")


def _workload():
    """Fresh workload object per timing run so no memoized state leaks in."""
    return k_way_marginals(adult_domain(), 2)


def bench_opt_hdmm(restarts: int = 25, workers: int = 4, rng: int = 0) -> dict:
    """Engine (workers=4 / workers=1) vs seed-equivalent sequential path."""
    # Seed-equivalent: no structural caching, sparse marginals algebra,
    # strictly sequential restarts.
    set_cache_enabled(False)
    set_dense_algebra_enabled(False)
    try:
        with Timer() as t_seed:
            seed_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=1)
    finally:
        set_cache_enabled(True)
        set_dense_algebra_enabled(True)

    with Timer() as t_w1:
        w1_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=1)
    with Timer() as t_w4:
        w4_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=workers)

    return {
        "workload": "adult-2way-marginals",
        "restarts": restarts,
        "workers": workers,
        "seed_path_seconds": round(t_seed.elapsed, 4),
        "engine_workers1_seconds": round(t_w1.elapsed, 4),
        "engine_seconds": round(t_w4.elapsed, 4),
        "speedup_vs_seed": round(t_seed.elapsed / t_w4.elapsed, 3),
        "loss_seed_path": seed_res.loss,
        "loss_workers1": w1_res.loss,
        "loss_workers4": w4_res.loss,
        "loss_deterministic": bool(w1_res.loss == w4_res.loss),
    }


def bench_kmatmat(batch: int = 64, reps: int = 7) -> dict:
    """Batched kmatmat vs the seed per-column kmatvec loop at n = 4096."""
    rng = np.random.default_rng(0)
    cases = {
        # Range-marginal-style product: the dominant Kronecker shape in
        # marginal reconstruction (rectangular Total + Identity factors).
        "prefix-identity-total": [Prefix(16), Identity(16), Total(16)],
        # Dense strategy-factor product (PIdentity-like leaves).
        "dense-cube": [Dense(rng.standard_normal((16, 16))) for _ in range(3)],
    }
    out: dict = {"n": 4096, "batch": batch, "factors": 3, "cases": {}}
    for name, factors in cases.items():
        n = int(np.prod([A.shape[1] for A in factors]))
        X = rng.standard_normal((n, batch))
        kmatmat(factors, X)  # warm-up
        t_batched = min(
            _timed(lambda: kmatmat(factors, X)) for _ in range(reps)
        )
        t_column = min(
            _timed(
                lambda: np.stack(
                    [kmatvec(factors, X[:, j]) for j in range(batch)], axis=1
                )
            )
            for _ in range(reps)
        )
        out["cases"][name] = {
            "kmatmat_seconds": round(t_batched, 6),
            "column_loop_seconds": round(t_column, 6),
            "speedup": round(t_column / t_batched, 2),
        }
    out["speedup"] = out["cases"]["prefix-identity-total"]["speedup"]
    return out


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_serving(
    n: int = 64, trials: int = 20, n_eps: int = 5, rng: int = 7
) -> dict:
    """Batched MEASURE+RECONSTRUCT sweep vs the seed single-shot loop."""
    from scipy.sparse.linalg import LinearOperator, lsmr

    from repro.core import HDMM, answer_workload, laplace_measure
    from repro.optimize import opt_union
    from repro.optimize.parallel import spawn_seeds
    from repro.workload import range_total_union

    W = range_total_union(n)  # (R x T) ∪ (T x R): the paper's union case
    result = opt_union(W, rng=0)
    A = result.strategy
    mech = HDMM(restarts=1, rng=0)
    mech.workload, mech.strategy, mech.result = W, A, result

    x = np.random.default_rng(3).poisson(50, W.shape[1]).astype(float)
    eps_grid = np.logspace(-1, 1, n_eps)
    T = n_eps * trials
    seeds = spawn_seeds(rng, T)
    mech.run(x, 1.0, rng=0)  # warm the structural caches, as fit() leaves them

    # Seed-equivalent single-shot loop: per-trial measure + cold LSMR (the
    # seed's auto path for union strategies) + per-trial answering.
    op = LinearOperator(
        shape=A.shape, matvec=A.matvec, rmatvec=A.rmatvec, dtype=np.float64
    )
    with Timer() as t_seed:
        seed_answers = np.stack(
            [
                answer_workload(
                    W,
                    lsmr(
                        op,
                        laplace_measure(A, x, eps_grid[j // trials], rng=seeds[j]),
                        atol=1e-10,
                        btol=1e-10,
                    )[0],
                )
                for j in range(T)
            ]
        )

    # Post-PR single-shot loop: same structured solver, one trial at a time.
    with Timer() as t_loop:
        loop_answers = np.stack(
            [
                mech.run(x, eps_grid[j // trials], rng=seeds[j])
                for j in range(T)
            ]
        )

    with Timer() as t_batch:
        batch_answers = mech.run_batch(x, eps_grid, trials=trials, rng=rng)
    with Timer() as t_exact:
        exact_answers = mech.run_batch(
            x, eps_grid, trials=trials, rng=rng, exact=True, warm_start=False
        )

    flat = batch_answers.reshape(T, -1)
    scale = float(np.max(np.abs(loop_answers)))
    return {
        "workload": f"range-total-union-{n}",
        "strategy": repr(A),
        "domain": A.shape[1],
        "trials": trials,
        "eps_grid": [round(float(e), 4) for e in eps_grid],
        "seed_loop_seconds": round(t_seed.elapsed, 4),
        "single_shot_loop_seconds": round(t_loop.elapsed, 4),
        "batch_seconds": round(t_batch.elapsed, 4),
        "batch_exact_seconds": round(t_exact.elapsed, 4),
        "speedup_vs_seed_loop": round(t_seed.elapsed / t_batch.elapsed, 2),
        "speedup_vs_single_shot_loop": round(
            t_loop.elapsed / t_batch.elapsed, 2
        ),
        "answers_bit_identical": bool(
            np.array_equal(exact_answers.reshape(T, -1), loop_answers)
        ),
        "batch_max_rel_dev_vs_loop": float(
            np.max(np.abs(flat - loop_answers)) / scale
        ),
        "batch_max_rel_dev_vs_seed_lsmr": float(
            np.max(np.abs(flat - seed_answers)) / scale
        ),
    }


def _multiblock_workload(n: int):
    """An SF-1-style union with four structural signatures over an n³
    domain: population total, a one-way identity margin, a trailing
    range margin, and a two-way tabulation — ``partition_products``
    groups them by signature, so ``opt_union(groups=4)`` yields a
    four-block union strategy (the L ≥ 3 shape ROADMAP left on the
    cold-CG path)."""
    from repro.linalg import AllRange, Identity, Kronecker, Ones, VStack

    I, T, R = Identity(n), Ones(1, n), AllRange(n)
    return VStack(
        [
            Kronecker([T, T, T]),
            Kronecker([I, T, T]),
            Kronecker([T, T, R]),
            Kronecker([I, I, T]),
        ]
    )


def bench_serving_multiblock(
    n: int = 16, trials: int = 20, n_eps: int = 5, rng: int = 11
) -> dict:
    """L ≥ 3 union serving: preconditioned+recycled path vs cold CG."""
    from scipy.sparse.linalg import LinearOperator, lsmr

    from repro.core import HDMM, answer_workload
    from repro.core.measure import laplace_measure_batch
    from repro.core.solvers import (
        GramRecycleState,
        cg_gram_solve,
        gram_recycle_state,
        union_gram_preconditioner,
    )
    from repro.optimize import opt_union

    W = _multiblock_workload(n)
    result = opt_union(W, rng=0, groups=4)
    A = result.strategy
    assert len(A.blocks) == 4, "expected a 4-block union strategy"
    mech = HDMM(restarts=1, rng=0)
    mech.workload, mech.strategy, mech.result = W, A, result

    x = np.random.default_rng(3).poisson(50, W.shape[1]).astype(float)
    eps_grid = np.logspace(-1, 1, n_eps)
    T = n_eps * trials
    mech.run(x, 1.0, rng=0)  # warm Gram + preconditioner caches, as fit() leaves them

    # Iteration counts on one sweep's normal equations (same noise the
    # timed paths see: run_batch draws per-trial seeds the same way).
    Y = laplace_measure_batch(A, x, np.repeat(eps_grid, trials), rng=rng)
    B = A.rmatmat(Y)
    G = A.gram()
    M = union_gram_preconditioner(A)
    iters_plain = int(cg_gram_solve(G, B).iterations.sum())
    iters_pre = int(cg_gram_solve(G, B, preconditioner=M).iterations.sum())
    # Recycled serving pattern: the cold first block is deflated by the
    # recycled basis, warm-started blocks carry the sweep; repeat sweeps
    # with *fresh* noise show the basis cutting later cold solves as the
    # harvest accumulates coverage of the Gram's degenerate clusters.
    state = GramRecycleState()
    sweep_iters, cold_block_iters = [], []
    for s in range(3):
        B_s = B if s == 0 else A.rmatmat(
            laplace_measure_batch(A, x, np.repeat(eps_grid, trials), rng=rng + s)
        )
        prev, tot = None, 0
        for e in range(n_eps):
            blk = np.ascontiguousarray(B_s[:, e * trials : (e + 1) * trials])
            if prev is None:
                res = cg_gram_solve(G, blk, preconditioner=M, recycle=state)
                cold_block_iters.append(int(res.iterations.sum()))
            else:
                res = cg_gram_solve(G, blk, x0=prev, preconditioner=M)
            prev = res.x
            tot += int(res.iterations.sum())
        sweep_iters.append(tot)

    # Wall clock: the pre-PR cold-CG path (plain CG from scratch per
    # column) vs the new auto path (preconditioner + warm starts +
    # recycling), on identical measurements.
    with Timer() as t_cold:
        cold_answers = mech.run_batch(
            x, eps_grid, trials=trials, rng=rng, method="cg", warm_start=False
        )
    gram_recycle_state(A).reset()
    with Timer() as t_fast:
        fast_answers = mech.run_batch(x, eps_grid, trials=trials, rng=rng)

    # Independent LSMR cross-check on the first trial of each ε block.
    op = LinearOperator(
        shape=A.shape, matvec=A.matvec, rmatvec=A.rmatvec, dtype=np.float64
    )
    fast_flat = fast_answers.reshape(T, -1)
    check_cols = [e * trials for e in range(n_eps)]
    lsmr_answers = np.stack(
        [
            answer_workload(
                W,
                lsmr(
                    op,
                    np.ascontiguousarray(Y[:, j]),
                    atol=1e-10,
                    btol=1e-10,
                )[0],
            )
            for j in check_cols
        ]
    )
    scale = float(np.max(np.abs(lsmr_answers)))
    dev_lsmr = float(
        np.max(np.abs(fast_flat[check_cols] - lsmr_answers)) / scale
    )

    # exact=True determinism: two identical fresh runs (fresh strategy
    # fit, fresh recycle basis) must agree to the last bit.
    def fresh_exact_run():
        W2 = _multiblock_workload(n)
        res2 = opt_union(W2, rng=0, groups=4)
        m2 = HDMM(restarts=1, rng=0)
        m2.workload, m2.strategy, m2.result = W2, res2.strategy, res2
        return m2.run_batch(x, eps_grid, trials=trials, rng=rng, exact=True)

    bit_identical = bool(np.array_equal(fresh_exact_run(), fresh_exact_run()))

    return {
        "workload": f"sf1-style-4sig-union-{n}^3",
        "strategy": repr(A),
        "domain": A.shape[1],
        "groups": 4,
        "trials": trials,
        "eps_grid": [round(float(e), 4) for e in eps_grid],
        "cg_cold_seconds": round(t_cold.elapsed, 4),
        "preconditioned_seconds": round(t_fast.elapsed, 4),
        "speedup_vs_cold_cg": round(t_cold.elapsed / t_fast.elapsed, 2),
        "iterations": {
            "plain_cg": iters_plain,
            "preconditioned": iters_pre,
            "preconditioned_recycled_sweeps": sweep_iters,
            "cold_block_per_sweep": cold_block_iters,
        },
        "recycle_basis_vectors": gram_recycle_state(A).size,
        "max_rel_dev_vs_lsmr": dev_lsmr,
        "answers_bit_identical": bit_identical,
    }


def _api_expressions(n_exprs: int):
    """A deterministic mixed batch of declarative expressions (with
    natural duplicates, as ad-hoc client traffic has): marginals over
    attribute pairs, CDF/range queries, filtered counts, and weighted
    unions, cycled up to ``n_exprs``."""
    import itertools

    from repro.api import A, marginal, prefix, ranges, total, union

    attrs = ["age", "income", "race", "sex"]
    patterns = []
    for a, b in itertools.combinations(attrs, 2):
        patterns.append(marginal(a, b))
    patterns += [prefix("age"), prefix("income"), ranges("race"), total()]
    for lo in range(6):
        patterns.append(A("age").between(lo, lo + 8) & A("sex").eq("F"))
        patterns.append(A("income").between(lo, lo + 1) & A("race").eq(lo % 4))
    patterns.append(union(marginal("age"), total(), weights=[1.0, 0.25]))
    patterns.append(0.5 * marginal("sex", "race"))
    return [patterns[i % len(patterns)] for i in range(n_exprs)]


def bench_api_planner(n_exprs: int = 512, restarts: int = 2) -> dict:
    """Declarative layer: compile+plan latency for a mixed expression
    batch, dedup factor, and the free-hit ratio once the one accounted
    measurement has warmed the reconstruction cache."""
    from repro.api import Schema, Session
    from repro.service import PrivacyAccountant

    schema = Schema.from_spec(
        {"age": 16, "income": 8, "race": 4, "sex": ["M", "F"]}
    )
    sess = Session(
        accountant=PrivacyAccountant(default_cap=100.0),
        restarts=restarts,
        rng=0,
    )
    x = np.random.default_rng(5).poisson(30, schema.domain.size()).astype(float)
    ds = sess.dataset("traffic", schema=schema, data=x, epsilon_cap=50.0)
    exprs = _api_expressions(n_exprs)

    from repro.api.planner import plan_queries

    svc = sess.service
    # The truly cold plan: first contact with this traffic — pays the
    # compile and the cold routing pass, nothing memoized yet.
    t_plan_cold = _timed(lambda: ds.plan(exprs, eps=1.0))
    plan_cold = ds.plan(exprs, eps=1.0)
    # Compile cost proper, on fresh expression objects so the dataset's
    # per-expression memo cannot answer for the compiler.
    with Timer() as t_compile:
        batch = ds.compile_many(_api_expressions(n_exprs))
    t_route_cold = min(
        _timed(lambda: plan_queries(svc, "traffic", batch, 1.0))
        for _ in range(3)
    )
    spent0 = sess.service.accountant.spent("traffic")
    with Timer() as t_warmup:
        ds.ask_many(exprs, eps=1.0, rng=7)
    actual_debit = sess.service.accountant.spent("traffic") - spent0

    # After warmup the whole batch must route through the cache for free,
    # and steady-state planning against a populated cache must not cost
    # more than the cold plan did: span probes and the per-group RMSE
    # estimate are memoized per fingerprint on the strategy, and
    # box-decomposable queries skip the span machinery entirely (PR 7
    # regression fix — the first warm pass pays the memo fills execution
    # would have paid anyway, so it is excluded by the min).
    t_plan_warm = min(_timed(lambda: ds.plan(exprs, eps=1.0)) for _ in range(3))
    plan_warm = ds.plan(exprs, eps=1.0)
    t_route_warm = min(
        _timed(lambda: plan_queries(svc, "traffic", batch, 1.0))
        for _ in range(3)
    )
    spent1 = sess.service.accountant.spent("traffic")
    with Timer() as t_serve_warm:
        ds.ask_many(exprs, eps=1.0, rng=8)
    free_spent = sess.service.accountant.spent("traffic") - spent1

    return {
        "schema": repr(schema),
        "domain": schema.domain.size(),
        "n_expressions": n_exprs,
        "n_distinct": len(batch.queries),
        "dedup_factor": round(n_exprs / len(batch.queries), 2),
        "compile_seconds": round(t_compile.elapsed, 4),
        "compile_ms_per_expr": round(t_compile.elapsed / n_exprs * 1e3, 4),
        "plan_cold_seconds": round(t_plan_cold, 4),
        "plan_warm_seconds": round(t_plan_warm, 4),
        "route_cold_seconds": round(t_route_cold, 6),
        "route_warm_seconds": round(t_route_warm, 6),
        "plan_warm_le_cold": bool(t_plan_warm <= t_plan_cold),
        "warmup_measure_seconds": round(t_warmup.elapsed, 4),
        "serve_warm_seconds": round(t_serve_warm.elapsed, 4),
        "plan_eps_estimate": plan_cold.total_epsilon,
        "actual_debit": actual_debit,
        "plan_matches_debit": bool(
            abs(plan_cold.total_epsilon - actual_debit) < 1e-12
        ),
        "free_hit_ratio_after_warmup": plan_warm.free_fraction,
        "free_spend_after_warmup": free_spent,
    }


def bench_service(n: int = 64, restarts: int = 5, query_reps: int = 50) -> dict:
    """Registry cold-fit vs warm-load, and free-query-hit latency."""
    import shutil
    import tempfile

    from repro.service import PrivacyAccountant, QueryService, StrategyRegistry
    from repro.workload import range_total_union

    root = tempfile.mkdtemp(prefix="repro-bench-registry-")
    try:
        W = range_total_union(n)
        x = np.random.default_rng(3).poisson(50, W.shape[1]).astype(float)

        cold_svc = QueryService(
            registry=StrategyRegistry(root), restarts=restarts, rng=0
        )
        with Timer() as t_cold:
            key, strategy, _, from_registry = cold_svc.prepare(W)
        assert not from_registry

        # A fresh service over the same directory — the restarted process.
        warm_svc = QueryService(
            registry=StrategyRegistry(root),
            accountant=PrivacyAccountant(default_cap=100.0),
            restarts=restarts,
            rng=0,
        )
        with Timer() as t_warm:
            _, _, _, from_registry = warm_svc.prepare(W)
        assert from_registry

        warm_svc.add_dataset("bench", x)
        warm_svc.measure("bench", W, eps=1.0, rng=7)
        q = np.zeros(W.shape[1])
        q[: n // 2] = 1.0
        # Wrap once: repeated ad-hoc traffic reuses the query object, so
        # the accelerator's range-spec memo and gather plan persist
        # across hits (a fresh ndarray per call would re-derive them).
        qm = Dense(q[None, :])
        hit = warm_svc.query("bench", qm)  # warm span/table caches
        with Timer() as t_query:
            for _ in range(query_reps):
                warm_svc.query("bench", qm)
        spent = warm_svc.accountant.spent("bench")

        return {
            "workload": f"range-total-union-{n}",
            "strategy": repr(strategy),
            "registry_key": key,
            "restarts": restarts,
            "cold_fit_seconds": round(t_cold.elapsed, 4),
            "warm_load_seconds": round(t_warm.elapsed, 6),
            "warm_load_speedup": round(t_cold.elapsed / t_warm.elapsed, 1),
            "free_query_hit_ms": round(t_query.elapsed / query_reps * 1e3, 4),
            "free_query_route": hit.route,
            "free_query_budget_spent": spent - 1.0,  # must stay at 0.0
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_accelerator(
    shape: tuple = (32, 16, 8), reps: int = 200, build_reps: int = 5
) -> dict:
    """O(1) read path: summed-area gathers vs span-projection serving."""
    import shutil
    import tempfile

    from repro.linalg import AllRange, Identity, Kronecker, Ones, VStack
    from repro.service import (
        AcceleratorTable,
        QueryService,
        StrategyRegistry,
        range_spec_of,
    )
    from repro.service.accelerator import load_table
    from repro.service.engine import Reconstruction, in_measured_span

    root = tempfile.mkdtemp(prefix="repro-bench-accel-")
    try:
        n = int(np.prod(shape))
        x_hat = np.random.default_rng(9).poisson(40, n).astype(float)
        strategy = Kronecker([Identity(s) for s in shape])
        svc = QueryService(registry=StrategyRegistry(root), accountant=None)
        svc.add_dataset("bench", x_hat)
        recon = Reconstruction(key="k", strategy=strategy, x_hat=x_hat, eps=1.0)
        svc._datasets["bench"].reconstructions["k"] = recon

        # -- single free hit: one range count over the leading attribute.
        row = np.zeros(shape[0])
        row[shape[0] // 8 : shape[0] // 2] = 1.0
        ones = [Ones(1, s) for s in shape[1:]]
        q_single = Kronecker([Dense(row[None, :])] + ones)
        first = svc.query("bench", q_single)  # builds + persists the table
        assert first.route == "accelerator"
        want = np.asarray(q_single.matvec(x_hat)).reshape(-1)
        values_exact = bool(np.array_equal(first.values, want))

        spec = range_spec_of(q_single)
        table = svc._datasets["bench"].accel[("k", spec.shape)]
        with Timer() as t_gather:
            for _ in range(reps):
                table.answer(spec)
        with Timer() as t_query:
            for _ in range(reps):
                svc.query("bench", q_single)

        # Pre-PR per-hit cost: every free hit re-ran the measured-span
        # projection, then a matvec through the strategy's pseudoinverse
        # path.  Warm its solver caches once so the comparison is against
        # the steady state, as bench_service recorded it.
        in_measured_span(strategy, q_single)
        with Timer() as t_seed:
            for _ in range(reps):
                in_measured_span(strategy, q_single)
                np.asarray(q_single.matvec(x_hat)).reshape(-1)

        # -- batched serving: every 1-D range x marginal cell, plus the
        # full identity workload, answered by one vectorized gather.
        q_batch = VStack(
            [
                Kronecker([AllRange(shape[0])] + ones),
                Kronecker([Identity(s) for s in shape]),
            ]
        )
        bspec = range_spec_of(q_batch)
        assert bspec is not None
        table.answer(bspec)  # warm the gather plan
        batch_reps = max(1, reps // 10)
        with Timer() as t_batch:
            for _ in range(batch_reps):
                got = table.answer(bspec)
        batch_exact = bool(
            np.array_equal(got, np.asarray(q_batch.matvec(x_hat)).reshape(-1))
        )
        qps = bspec.rows * batch_reps / t_batch.elapsed

        # -- amortized per-reconstruction costs: build, persist, reload.
        t_build = min(
            _timed(lambda: AcceleratorTable(x_hat, shape))
            for _ in range(build_reps)
        )
        with Timer() as t_persist:
            from repro.service.accelerator import store_table

            store_table(svc.registry, "bench", recon, shape, table)
        t_load = min(
            _timed(lambda: load_table(svc.registry, "bench", recon, shape))
            for _ in range(build_reps)
        )
        loaded = load_table(svc.registry, "bench", recon, shape)
        reload_exact = bool(
            loaded is not None and np.array_equal(loaded.flat, table.flat)
        )

        seed_us = t_seed.elapsed / reps * 1e6
        gather_us = t_gather.elapsed / reps * 1e6
        return {
            "domain_shape": list(shape),
            "domain": n,
            "table_mb": round(table.nbytes / 2**20, 3),
            "single_hit_gather_us": round(gather_us, 3),
            "single_hit_query_us": round(t_query.elapsed / reps * 1e6, 2),
            "single_hit_seed_span_projection_us": round(seed_us, 2),
            "single_hit_speedup": round(seed_us / gather_us, 1),
            "single_hit_values_exact": values_exact,
            "batch_rows": bspec.rows,
            "batch_gather_seconds": round(t_batch.elapsed / batch_reps, 6),
            "batch_answers_per_sec": round(qps),
            "batch_values_exact": batch_exact,
            "table_build_seconds": round(t_build, 6),
            "table_persist_seconds": round(t_persist.elapsed, 6),
            "table_load_seconds": round(t_load, 6),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_durability(
    n_debits: int = 500, n: int = 32, restarts: int = 2, reps: int = 5
) -> dict:
    """Durability tax: WAL debit overhead, recovery replay, checksum share."""
    import shutil
    import tempfile

    from repro.service import PrivacyAccountant, QueryService, StrategyRegistry
    from repro.service.registry import _file_sha256
    from repro.workload import range_total_union

    root = tempfile.mkdtemp(prefix="repro-bench-durability-")
    try:
        # Per-debit overhead: identical charge traffic against the plain
        # in-memory accountant and the WAL-backed one (every debit locks,
        # replays the tail, appends, and fsyncs before returning).
        amt = 1.0 / n_debits
        plain = PrivacyAccountant()
        plain.register("bench", 10.0)
        with Timer() as t_plain:
            for _ in range(n_debits):
                plain.charge("bench", amt)
        wal_path = os.path.join(root, "eps.wal")
        wal = PrivacyAccountant(wal_path=wal_path)
        wal.register("bench", 10.0)
        with Timer() as t_wal:
            for _ in range(n_debits):
                wal.charge("bench", amt)

        # Recovery replay rate, and the exact-state contract: the
        # replayed accountant must reproduce the writer's float sum and
        # ledger bit-for-bit.
        with Timer() as t_recover:
            recovered = PrivacyAccountant.recover(wal_path)
        state_exact = bool(
            recovered.spent("bench") == wal.spent("bench")
            and len(recovered.ledger) == len(wal.ledger)
        )
        with open(wal_path, "ab") as f:  # a crashed writer's torn tail
            f.write(b'{"kind":"debit","dataset":"bench","epsilon":9')
        torn_ok = bool(
            PrivacyAccountant.recover(wal_path).spent("bench")
            == wal.spent("bench")
        )

        # Warm registry load with the per-entry SHA-256 verify, and the
        # checksum's share of it.
        W = range_total_union(n)
        svc = QueryService(
            registry=StrategyRegistry(root), restarts=restarts, rng=0
        )
        key, _, _, from_registry = svc.prepare(W)
        assert not from_registry
        t_warm = min(
            _timed(lambda: StrategyRegistry(root).load(key))
            for _ in range(reps)
        )
        npz = os.path.join(root, f"{key}.npz")
        t_sum = min(_timed(lambda: _file_sha256(npz)) for _ in range(reps))

        return {
            "n_debits": n_debits,
            "plain_debit_us": round(t_plain.elapsed / n_debits * 1e6, 2),
            "wal_debit_us": round(t_wal.elapsed / n_debits * 1e6, 2),
            "wal_overhead_us_per_debit": round(
                (t_wal.elapsed - t_plain.elapsed) / n_debits * 1e6, 2
            ),
            "recovery_records": len(recovered.ledger) + 1,  # + register
            "recovery_seconds": round(t_recover.elapsed, 6),
            "recovery_records_per_sec": round(
                (len(recovered.ledger) + 1) / t_recover.elapsed
            ),
            "recovery_state_exact": state_exact,
            "torn_tail_truncated": torn_ok,
            "workload": f"range-total-union-{n}",
            "npz_bytes": os.path.getsize(npz),
            "warm_load_ms": round(t_warm * 1e3, 4),
            "checksum_ms": round(t_sum * 1e3, 4),
            "checksum_fraction_of_warm_load": round(t_sum / t_warm, 3),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_mechanisms(
    n: int = 64,
    trials: int = 50,
    n_debits: int = 500,
    eps: float = 1.0,
    delta: float = 1e-6,
    rng: int = 13,
) -> dict:
    """Mechanism choice: Gaussian vs Laplace at equal budget, and the
    zCDP accounting fold's per-debit tax vs the pure-ε sum."""
    from repro.core import HDMM
    from repro.optimize import opt_union
    from repro.privacy.mechanisms import get_mechanism
    from repro.service import PrivacyAccountant
    from repro.workload import range_total_union

    W = range_total_union(n)
    result = opt_union(W, rng=0)
    A = result.strategy
    mech = HDMM(restarts=1, rng=0)
    mech.workload, mech.strategy, mech.result = W, A, result
    x = np.random.default_rng(3).poisson(50, W.shape[1]).astype(float)
    truth = np.asarray(W.matvec(x)).reshape(-1)
    mech.run(x, 1.0, rng=0)  # warm the structural caches, as fit() leaves them

    out: dict = {
        "workload": f"range-total-union-{n}",
        "strategy": repr(A),
        "domain": A.shape[1],
        "trials": trials,
        "eps": eps,
        "delta": delta,
    }
    # Same strategy, same data, same per-release ε, same spawned seeds —
    # only the noise mechanism differs.  The analytic rootmse (what the
    # planner's rmse(lap)/rmse(gauss) columns print) must predict the
    # empirical trial RMSE for both.
    for name in ("laplace", "gaussian"):
        m = get_mechanism(name, delta if name == "gaussian" else None)
        predicted = float(m.rootmse(W, A, eps))
        kwargs = {} if name == "laplace" else {
            "mechanism": "gaussian", "delta": delta,
        }
        with Timer() as t:
            answers = mech.run_batch(x, eps, trials=trials, rng=rng, **kwargs)
        flat = answers.reshape(trials, -1)
        empirical = float(np.sqrt(np.mean((flat - truth) ** 2)))
        out[name] = {
            "predicted_rmse": round(predicted, 4),
            "empirical_rmse": round(empirical, 4),
            "empirical_over_predicted": round(empirical / predicted, 4),
            "sweep_seconds": round(t.elapsed, 4),
        }
    out["noise_scale_ratio_gauss_vs_lap"] = round(
        float(get_mechanism("gaussian", delta).noise_scale(A, eps))
        / float(get_mechanism("laplace").noise_scale(A, eps)),
        4,
    )
    out["rmse_ratio_gaussian_vs_laplace"] = round(
        out["gaussian"]["predicted_rmse"] / out["laplace"]["predicted_rmse"], 4
    )
    out["predictions_calibrated"] = bool(
        all(
            abs(out[k]["empirical_over_predicted"] - 1.0) < 0.25
            for k in ("laplace", "gaussian")
        )
    )

    # Accounting tax: identical debit traffic through the pure-ε fold
    # and the full zCDP fold (ε, δ, ρ accumulated per record, policy
    # checked on every debit).  The ε axis of both ledgers must come out
    # bit-identical — same `+` sequence, richer records alongside it.
    amt = eps / n_debits
    pure = PrivacyAccountant()
    pure.register("bench", 10.0)
    with Timer() as t_pure:
        for _ in range(n_debits):
            pure.charge("bench", amt)
    zcdp = PrivacyAccountant()
    zcdp.register("bench", 10.0)
    with Timer() as t_zcdp:
        for _ in range(n_debits):
            zcdp.charge("bench", amt, mechanism="gaussian", delta=delta)
    curve = zcdp.curve("bench")
    out["accounting"] = {
        "n_debits": n_debits,
        "pure_eps_debit_us": round(t_pure.elapsed / n_debits * 1e6, 2),
        "zcdp_debit_us": round(t_zcdp.elapsed / n_debits * 1e6, 2),
        "zcdp_overhead_us_per_debit": round(
            (t_zcdp.elapsed - t_pure.elapsed) / n_debits * 1e6, 2
        ),
        "eps_fold_identical": bool(
            zcdp.spent("bench") == pure.spent("bench")
        ),
        "delta_spent": curve.delta,
        "rho_spent": curve.rho,
    }
    return out


def bench_server(
    seq_reps: int = 200,
    pipeline_depth: int = 256,
    measured_reps: int = 10,
    overload_factor: int = 2,
) -> dict:
    """The HTTP front-end: free-path latency/throughput and overload sheds.

    Free-hit QPS is measured with HTTP/1.1 **pipelining** — the transport
    writes one response per request in request order on a keep-alive
    connection, so a client may send a burst of requests in one socket
    write and read the responses back to back, amortizing the syscall
    round-trips that dominate a request/response ping-pong.
    """
    import http.client
    import shutil
    import socket
    import statistics
    import tempfile
    import threading

    from repro.api import Schema, Session
    from repro.server.app import ServerApp
    from repro.server.http import serve_in_thread
    from repro.service import PrivacyAccountant, faults

    def _new_app(extra_datasets=0, **kwargs):
        # Extra datasets share the schema and data: the strategy fit is
        # memoized per workload fingerprint across datasets, so a request
        # against a fresh dataset is a *warm measurement* — a real debit
        # and fresh noise with no fit — which is how the measured path is
        # exercised without the free path answering from coverage first.
        sess = Session(accountant=PrivacyAccountant(default_cap=1000.0))
        app = ServerApp(sess, **kwargs)
        schema = Schema.from_spec({"age": 32, "income": 16, "sex": ["M", "F"]})
        data = (
            np.random.default_rng(5)
            .poisson(30, schema.domain.shape())
            .astype(float)
        )
        app.register("adult", schema, data, epsilon_cap=1000.0)
        for i in range(extra_datasets):
            app.register(f"m{i}", schema, data, epsilon_cap=1000.0)
        return app

    def _post(conn, payload):
        conn.request(
            "POST", "/query", json.dumps(payload),
            {"Content-Type": "application/json"},
        )
        r = conn.getresponse()
        return r.status, dict(r.getheaders()), json.loads(r.read())

    free_q = {"dataset": "adult", "queries": [{"marginal": ["age"]}]}
    out: dict = {}

    root = tempfile.mkdtemp(prefix="repro-bench-server-")
    try:
        app = _new_app(extra_datasets=measured_reps)
        with serve_in_thread(app) as srv:
            conn = http.client.HTTPConnection(
                "127.0.0.1", srv.port, timeout=60
            )
            # One measurement primes the reconstruction + accelerator so
            # the benchmark query serves for free afterwards.
            status, _, warm = _post(
                conn, {**free_q, "eps": 1.0, "seed": 1, "timeout": 60.0}
            )
            assert status == 200 and warm["charged"] == 1.0

            # -- free-path latency over keep-alive, one request at a time.
            lat = []
            for _ in range(seq_reps):
                t0 = time.perf_counter()
                status, _, body = _post(conn, free_q)
                lat.append((time.perf_counter() - t0) * 1e3)
                assert status == 200 and body["charged"] == 0.0
            lat.sort()
            out["free_hit_p50_ms"] = round(statistics.median(lat), 4)
            out["free_hit_p99_ms"] = round(
                lat[min(len(lat) - 1, int(len(lat) * 0.99))], 4
            )

            # -- measured-path latency: each rep targets a fresh dataset
            # so the free path cannot answer from coverage — a genuine
            # warm measurement (fit memoized by the priming request
            # above) with a real WAL-less debit and fresh noise.
            mlat = []
            for i in range(measured_reps):
                t0 = time.perf_counter()
                status, _, body = _post(conn, {
                    "dataset": f"m{i}",
                    "queries": [{"marginal": ["age"]}],
                    "eps": 0.01, "seed": 100 + i, "timeout": 60.0,
                })
                mlat.append((time.perf_counter() - t0) * 1e3)
                assert status == 200 and body["charged"] == 0.01
            mlat.sort()
            out["measured_p50_ms"] = round(statistics.median(mlat), 4)
            out["measured_p99_ms"] = round(mlat[-1], 4)
            conn.close()

            # -- pipelined free-hit throughput: the whole burst in a few
            # socket writes, responses parsed back to back.
            req_body = json.dumps(free_q).encode()
            raw = (
                b"POST /query HTTP/1.1\r\n"
                b"Host: bench\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(req_body)).encode() + b"\r\n"
                b"\r\n" + req_body
            )
            sock = socket.create_connection(("127.0.0.1", srv.port), timeout=60)
            try:
                f = sock.makefile("rwb")
                f.write(raw)  # warm this connection's parse/serve path
                f.flush()
                _read_http_response(f)
                t0 = time.perf_counter()
                f.write(raw * pipeline_depth)
                f.flush()
                ok = 0
                for _ in range(pipeline_depth):
                    status, _ = _read_http_response(f)
                    ok += status == 200
                elapsed = time.perf_counter() - t0
            finally:
                sock.close()
            assert ok == pipeline_depth
            out["pipeline_depth"] = pipeline_depth
            out["free_pipelined_qps"] = round(pipeline_depth / elapsed)
            out["free_pipelined_us_per_req"] = round(
                elapsed / pipeline_depth * 1e6, 2
            )

        # -- overload: capacity of 1 executing + small queue, offered
        # ``overload_factor`` times that in concurrent measured requests
        # while measurement is artificially slow.  Every response must be
        # a structured 200/429/503; refused ones carry Retry-After.
        capacity = 3  # 1 executing + 2 queued
        offered = capacity * overload_factor * 2
        app = _new_app(
            extra_datasets=offered,
            max_measure=1, max_queue=2, per_dataset=capacity * 4,
        )
        inj = faults.FaultInjector().delay(
            "engine.measure.noise", 0.15, times=offered + 1
        )
        results: list = [None] * offered
        with serve_in_thread(app) as srv:
            # Prime the strategy fit so overload requests hit the warm
            # (measure-only) path and contend on the executor, not the fit.
            c = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=60)
            status, _, _ = _post(
                c, {**free_q, "eps": 1.0, "seed": 1, "timeout": 60.0}
            )
            c.close()
            assert status == 200
            with inj.active():
                def client(i):
                    # Each client hits its own dataset: a guaranteed
                    # measured request (no coverage to serve from) that
                    # must pass admission.
                    c = http.client.HTTPConnection(
                        "127.0.0.1", srv.port, timeout=60
                    )
                    try:
                        results[i] = _post(c, {
                            "dataset": f"m{i}",
                            "queries": [{"marginal": ["age"]}],
                            "eps": 0.01, "seed": 1000 + i, "timeout": 30.0,
                        })
                    finally:
                        c.close()

                threads = [
                    threading.Thread(target=client, args=(i,))
                    for i in range(offered)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(60)
        statuses = [r[0] for r in results]
        shed = [r for r in results if r[0] in (429, 503)]
        ok_count = statuses.count(200)
        assert set(statuses) <= {200, 429, 503}
        assert all("Retry-After" in h for _, h, _ in shed)
        out["overload"] = {
            "offered": offered,
            "capacity": capacity,
            "completed_200": ok_count,
            "shed": len(shed),
            "shed_rate": round(len(shed) / offered, 3),
            "shed_reasons": dict(app.admission.shed_counts),
            "all_responses_structured": True,
        }
        return out
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _read_http_response(f) -> tuple:
    """Read one HTTP/1.1 response off a buffered socket file; returns
    ``(status, body_bytes)``."""
    status_line = f.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = f.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        k, _, v = line.partition(b":")
        if k.strip().lower() == b"content-length":
            length = int(v.strip())
    return status, f.read(length)


def bench_observability(
    shape: tuple = (64, 64), batch: int = 64, rounds: int = 7
) -> dict:
    """Observability tax on the free-hit path.

    The hard contract is the **disabled** state: with metrics and tracing
    off, the instrumented batch serve must stay within 3% of a replica of
    the pre-instrumentation hit loop (same ``_find_cover`` +
    ``_serve_hit`` calls, no obs plumbing).  The **enabled** numbers are
    the price of turning the feature on — a full span tree and labelled
    counters per request — recorded for trend-watching, not bounded.
    """
    from repro import obs
    from repro.linalg import Kronecker, Ones
    from repro.service import QueryService
    from repro.service.engine import (
        BatchResult,
        Reconstruction,
        _as_query_matrix,
    )

    n = int(np.prod(shape))
    svc = QueryService()  # no accountant: this path must never charge
    rng = np.random.default_rng(9)
    svc.add_dataset("bench", rng.poisson(40, n).astype(float))
    strategy = Kronecker([Identity(s) for s in shape])
    x_hat = rng.normal(size=n)
    svc._datasets["bench"].reconstructions["k"] = Reconstruction(
        key="k", strategy=strategy, x_hat=x_hat, eps=1.0
    )
    # Pre-built box queries (accelerator route), reused across reps so
    # range-spec memos and gather plans stay warm like real traffic.
    ones = [Ones(1, s) for s in shape[1:]]
    mats = []
    for i in range(batch):
        row = np.zeros(shape[0])
        lo = (i * 3) % (shape[0] - 4)
        row[lo : lo + 4] = 1.0
        mats.append(Kronecker([Dense(row[None, :])] + ones))

    def replica():
        # The answer() free-hit path exactly as it was before the obs
        # instrumentation landed: validate, scan for covers, serve hits.
        ds = svc._dataset("bench")
        qs = [_as_query_matrix(q) for q in mats]
        for Q in qs:
            assert Q.shape[1] == n
        answers = [None] * len(qs)
        miss = []
        for i, Q in enumerate(qs):
            recon = svc._find_cover(ds, Q)
            if recon is not None:
                answers[i] = svc._serve_hit("bench", ds, Q, recon)
            else:
                miss.append(i)
        return BatchResult(
            answers=answers, charged=0.0, hits=len(qs) - len(miss),
            misses=len(miss),
        )

    try:
        obs.disable()
        obs.reset()
        svc.answer("bench", mats)  # build + warm the accelerator tables
        t_base = t_off = float("inf")
        for _ in range(rounds):  # interleaved: drift hits both equally
            t_base = min(t_base, _timed(replica))
            t_off = min(t_off, _timed(lambda: svc.answer("bench", mats)))
        obs.enable()
        svc.answer("bench", mats)  # warm the enabled path once
        t_on = min(
            _timed(lambda: svc.answer("bench", mats)) for _ in range(rounds)
        )
        result = svc.answer("bench", mats)
        spans = obs.get_trace(result.trace_id) or []
        span_names = {sp.name for sp in spans}
        snap = obs.REGISTRY.snapshot()
        series = snap.get("service.answers_total", {}).get("series", [])
        counted = sum(
            s["value"]
            for s in series
            if s["labels"] == {"dataset": "bench", "route": "accelerator"}
        )

        q1 = mats[0]
        obs.disable()
        t_q_off = min(
            _timed(lambda: svc.query("bench", q1)) for _ in range(rounds)
        )
        obs.enable()
        t_q_on = min(
            _timed(lambda: svc.query("bench", q1)) for _ in range(rounds)
        )
    finally:
        obs.disable()
        obs.reset()

    per_q = 1e6 / batch
    return {
        "domain_shape": list(shape),
        "domain": n,
        "batch": batch,
        "baseline_us_per_query": round(t_base * per_q, 3),
        "disabled_us_per_query": round(t_off * per_q, 3),
        "overhead_disabled_pct": round((t_off / t_base - 1.0) * 100, 2),
        "enabled_us_per_query": round(t_on * per_q, 3),
        "overhead_enabled_pct": round((t_on / t_base - 1.0) * 100, 2),
        "single_query_disabled_us": round(t_q_off * 1e6, 2),
        "single_query_enabled_us": round(t_q_on * 1e6, 2),
        "trace_spans_per_batch": len(spans),
        "trace_complete": bool(
            {"service.answer", "serve.hits"} <= span_names
        ),
        "answers_counted": int(counted),
        # enabled answer() calls: 1 warm + `rounds` timed + 1 traced.
        "answers_counter_correct": bool(counted == (rounds + 2) * batch),
    }


def run(quick: bool = False, restarts: int | None = None, workers: int = 4) -> dict:
    if restarts is None:
        restarts = 2 if quick else 25
    reps = 3 if quick else 7
    results = {
        "benchmark": "perf_regression",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "opt_hdmm": bench_opt_hdmm(restarts=restarts, workers=workers),
        "kmatmat": bench_kmatmat(reps=reps),
        "serving": bench_serving(n=32 if quick else 64,
                                 trials=5 if quick else 20,
                                 n_eps=3 if quick else 5),
        "service": bench_service(n=32 if quick else 64,
                                 restarts=2 if quick else 5,
                                 query_reps=10 if quick else 50),
        "serving_multiblock": bench_serving_multiblock(
            n=8 if quick else 16,
            trials=5 if quick else 20,
            n_eps=3 if quick else 5),
        "api_planner": bench_api_planner(
            n_exprs=96 if quick else 512,
            restarts=1 if quick else 2),
        "accelerator": bench_accelerator(
            shape=(16, 8, 4) if quick else (32, 16, 8),
            reps=30 if quick else 200,
            build_reps=2 if quick else 5),
        "mechanisms": bench_mechanisms(
            n=32 if quick else 64,
            trials=10 if quick else 50,
            n_debits=50 if quick else 500),
        "durability": bench_durability(
            n_debits=50 if quick else 500,
            n=16 if quick else 32,
            restarts=1 if quick else 2,
            reps=3 if quick else 5),
        "observability": bench_observability(
            shape=(32, 32) if quick else (64, 64),
            batch=16 if quick else 64,
            rounds=5 if quick else 7),
        "server": bench_server(
            seq_reps=30 if quick else 200,
            pipeline_depth=64 if quick else 256,
            measured_reps=3 if quick else 10),
    }
    return results


def check_serving_regression(results: dict, json_path: str = DEFAULT_JSON) -> dict:
    """Compare this run's serving speedup against the recorded trajectory.

    Returns ``{recorded, current, ratio}`` (ratio < 1 means slower than
    the recorded run); empty when no prior serving record exists.
    """
    try:
        with open(json_path) as f:
            previous = json.load(f)
    except (OSError, ValueError):
        return {}
    prev = previous.get("serving")
    if not prev or "speedup_vs_seed_loop" not in prev:
        return {}
    recorded = float(prev["speedup_vs_seed_loop"])
    current = float(results["serving"]["speedup_vs_seed_loop"])
    return {
        "recorded": recorded,
        "current": current,
        "ratio": round(current / recorded, 3) if recorded else None,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-run sizes (2 restarts, 3 reps)")
    parser.add_argument("--restarts", type=int, default=None,
                        help="override opt_hdmm restart count")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", default=DEFAULT_JSON,
                        help=f"output path (default {DEFAULT_JSON})")
    args = parser.parse_args()

    results = run(quick=args.quick, restarts=args.restarts, workers=args.workers)
    results["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    h = results["opt_hdmm"]
    k = results["kmatmat"]
    rows = [
        ["opt_hdmm seed path", f"{h['seed_path_seconds']:.2f}s", ""],
        ["opt_hdmm engine (workers=1)", f"{h['engine_workers1_seconds']:.2f}s", ""],
        [
            f"opt_hdmm engine (workers={h['workers']})",
            f"{h['engine_seconds']:.2f}s",
            f"{h['speedup_vs_seed']:.2f}x vs seed",
        ],
    ]
    for name, case in k["cases"].items():
        rows.append(
            [
                f"kmatmat {name}",
                f"{case['kmatmat_seconds'] * 1e3:.2f}ms",
                f"{case['speedup']:.1f}x vs column loop",
            ]
        )
    s = results["serving"]
    rows += [
        ["serving seed loop (LSMR)", f"{s['seed_loop_seconds']:.2f}s", ""],
        ["serving single-shot loop", f"{s['single_shot_loop_seconds']:.2f}s", ""],
        [
            f"serving batch ({s['trials']}x{len(s['eps_grid'])}ε)",
            f"{s['batch_seconds']:.3f}s",
            f"{s['speedup_vs_seed_loop']:.1f}x vs seed loop",
        ],
    ]
    v = results["service"]
    rows += [
        ["service cold fit + persist", f"{v['cold_fit_seconds']:.2f}s", ""],
        [
            "service warm registry load",
            f"{v['warm_load_seconds'] * 1e3:.1f}ms",
            f"{v['warm_load_speedup']:.0f}x vs cold fit",
        ],
        ["service free-query hit", f"{v['free_query_hit_ms']:.2f}ms", "zero budget"],
    ]
    mb = results["serving_multiblock"]
    rows += [
        ["multiblock cold CG", f"{mb['cg_cold_seconds']:.2f}s",
         f"{mb['iterations']['plain_cg']} iters"],
        [
            "multiblock precond+recycled",
            f"{mb['preconditioned_seconds']:.3f}s",
            f"{mb['speedup_vs_cold_cg']:.1f}x vs cold CG, "
            f"{mb['iterations']['preconditioned']} iters",
        ],
    ]
    ap = results["api_planner"]
    rows += [
        [
            f"api compile+plan ({ap['n_expressions']} exprs)",
            f"{(ap['compile_seconds'] + ap['plan_cold_seconds']) * 1e3:.1f}ms",
            f"{ap['dedup_factor']:.1f}x dedup "
            f"({ap['n_distinct']} distinct)",
        ],
        [
            "api warm serve (all cached)",
            f"{ap['serve_warm_seconds'] * 1e3:.1f}ms",
            f"free-hit ratio {ap['free_hit_ratio_after_warmup']:.2f}",
        ],
    ]
    ac = results["accelerator"]
    rows += [
        [
            "accelerator seed span-projection hit",
            f"{ac['single_hit_seed_span_projection_us']:.0f}us",
            "",
        ],
        [
            "accelerator single free hit (gather)",
            f"{ac['single_hit_gather_us']:.1f}us",
            f"{ac['single_hit_speedup']:.0f}x vs span projection",
        ],
        [
            f"accelerator batch gather ({ac['batch_rows']} rows)",
            f"{ac['batch_gather_seconds'] * 1e3:.2f}ms",
            f"{ac['batch_answers_per_sec'] / 1e3:.0f}k answers/s",
        ],
        [
            "accelerator table build + persist",
            f"{(ac['table_build_seconds'] + ac['table_persist_seconds']) * 1e3:.1f}ms",
            f"{ac['table_mb']:.1f}MB, reload "
            f"{ac['table_load_seconds'] * 1e3:.1f}ms",
        ],
    ]
    mc = results["mechanisms"]
    rows += [
        [
            f"mechanisms laplace sweep ({mc['trials']} trials)",
            f"{mc['laplace']['sweep_seconds']:.3f}s",
            f"rmse {mc['laplace']['empirical_rmse']:.1f} "
            f"(predicted {mc['laplace']['predicted_rmse']:.1f})",
        ],
        [
            f"mechanisms gaussian sweep (δ={mc['delta']:g})",
            f"{mc['gaussian']['sweep_seconds']:.3f}s",
            f"rmse {mc['gaussian']['empirical_rmse']:.1f} "
            f"({mc['rmse_ratio_gaussian_vs_laplace']:.2f}x laplace)",
        ],
        [
            "mechanisms zCDP debit",
            f"{mc['accounting']['zcdp_debit_us']:.1f}us",
            f"+{mc['accounting']['zcdp_overhead_us_per_debit']:.1f}us "
            f"vs pure-ε fold",
        ],
    ]
    d = results["durability"]
    rows += [
        [
            "durability WAL debit",
            f"{d['wal_debit_us']:.0f}us",
            f"+{d['wal_overhead_us_per_debit']:.0f}us vs in-memory",
        ],
        [
            f"durability recovery ({d['recovery_records']} records)",
            f"{d['recovery_seconds'] * 1e3:.1f}ms",
            f"{d['recovery_records_per_sec']:.0f} records/s",
        ],
        [
            "durability warm load + verify",
            f"{d['warm_load_ms']:.2f}ms",
            f"checksum {d['checksum_fraction_of_warm_load']:.0%} of load",
        ],
    ]
    ob = results["observability"]
    rows += [
        [
            f"obs free hit, obs off ({ob['batch']}q batch)",
            f"{ob['disabled_us_per_query']:.1f}us/q",
            f"{ob['overhead_disabled_pct']:+.2f}% vs uninstrumented",
        ],
        [
            "obs free hit, metrics+trace on",
            f"{ob['enabled_us_per_query']:.1f}us/q",
            f"{ob['overhead_enabled_pct']:+.1f}% (full span tree + counters)",
        ],
    ]
    sv = results["server"]
    rows += [
        [
            "server free hit over HTTP",
            f"p50 {sv['free_hit_p50_ms']:.2f}ms",
            f"p99 {sv['free_hit_p99_ms']:.2f}ms",
        ],
        [
            f"server pipelined free hits (depth {sv['pipeline_depth']})",
            f"{sv['free_pipelined_us_per_req']:.0f}us/req",
            f"{sv['free_pipelined_qps'] / 1e3:.1f}k req/s",
        ],
        [
            "server measured request",
            f"p50 {sv['measured_p50_ms']:.1f}ms",
            f"p99 {sv['measured_p99_ms']:.1f}ms",
        ],
    ]
    print_table(
        f"Perf regression ({'quick' if results['quick'] else 'full'}; "
        f"restarts={h['restarts']})",
        ["path", "time", "speedup"],
        rows,
    )
    print(
        f"loss determinism workers=1 vs workers={h['workers']}: "
        f"{h['loss_deterministic']}"
    )
    print(
        "serving answers bit-identical to single-shot loop: "
        f"{s['answers_bit_identical']}"
    )
    print(
        "multiblock exact=True same-seed answers bit-identical: "
        f"{mb['answers_bit_identical']} "
        f"(max rel dev vs LSMR {mb['max_rel_dev_vs_lsmr']:.2e})"
    )
    print(
        f"api planner ε estimate matches accountant debit: "
        f"{ap['plan_matches_debit']} "
        f"(plan warm <= cold: {ap['plan_warm_le_cold']})"
    )
    print(
        "accelerator answers bit-identical to matvec path: "
        f"single {ac['single_hit_values_exact']} / "
        f"batch {ac['batch_values_exact']}"
    )
    print(
        "mechanisms rmse predictions calibrated / ε fold bit-identical: "
        f"{mc['predictions_calibrated']} / "
        f"{mc['accounting']['eps_fold_identical']} "
        f"(σ/b = {mc['noise_scale_ratio_gauss_vs_lap']:.2f})"
    )
    print(
        "durability recovery state exact / torn tail truncated: "
        f"{d['recovery_state_exact']} / {d['torn_tail_truncated']}"
    )
    print(
        "observability trace complete / answer counters correct: "
        f"{ob['trace_complete']} / {ob['answers_counter_correct']} "
        f"(disabled overhead {ob['overhead_disabled_pct']:+.2f}%)"
    )
    ov = sv["overload"]
    print(
        f"server overload ({ov['offered']} offered / capacity "
        f"{ov['capacity']}): {ov['completed_200']} served, "
        f"{ov['shed']} shed (rate {ov['shed_rate']:.2f}), "
        f"all responses structured: {ov['all_responses_structured']}"
    )
    regression = check_serving_regression(results, args.json)
    if regression:
        print(
            f"serving speedup vs recorded trajectory: {regression['current']:.1f}x "
            f"now / {regression['recorded']:.1f}x recorded "
            f"(ratio {regression['ratio']})"
        )

    with open(args.json, "w") as f:
        json.dump(results, f, indent=2)
    print(f"wrote {args.json}")


def test_bench_perf_regression_smoke():
    """Quick-mode engine run: determinism holds and nothing crashes."""
    results = run(quick=True)
    assert results["opt_hdmm"]["loss_deterministic"]
    assert results["kmatmat"]["cases"]["prefix-identity-total"]["speedup"] > 1.0


def test_bench_service_smoke():
    """Quick registry/service case: warm loads must stay orders of
    magnitude cheaper than cold fits, and cache hits must stay free."""
    v = bench_service(n=32, restarts=2, query_reps=5)
    assert v["warm_load_speedup"] > 5.0
    assert v["free_query_budget_spent"] == 0.0
    assert v["free_query_hit_ms"] < 250.0
    # The committed trajectory must already carry a service record so
    # this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    assert recorded["service"]["warm_load_speedup"] > 5.0
    assert recorded["service"]["free_query_budget_spent"] == 0.0


def test_bench_serving_multiblock_smoke():
    """Quick multiblock case: the L ≥ 3 union contracts must hold — the
    preconditioner cuts CG iterations, recycling cuts the second sweep's
    cold solve, answers match the LSMR cross-check, and the exact=True
    same-seed determinism contract holds."""
    mb = bench_serving_multiblock(n=8, trials=5, n_eps=3)
    it = mb["iterations"]
    assert it["preconditioned"] < it["plain_cg"]
    # Recycling must cut the cold solve once the harvested basis has
    # accumulated coverage; the wall-clock speedup is only meaningful at
    # the full benchmark size, where per-iteration work dominates the
    # solver bookkeeping.
    cold = it["cold_block_per_sweep"]
    assert cold[-1] <= cold[0]
    assert mb["max_rel_dev_vs_lsmr"] < 1e-8
    assert mb["answers_bit_identical"]
    # The committed trajectory must already carry the acceptance-level
    # multiblock record, so this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["serving_multiblock"]
    assert rec["domain"] >= 4096 and rec["groups"] == 4
    assert rec["speedup_vs_cold_cg"] >= 3.0
    assert rec["max_rel_dev_vs_lsmr"] <= 1e-8
    assert rec["answers_bit_identical"]


def test_bench_api_planner_smoke():
    """Quick api_planner case: the declarative-layer contracts must hold
    — dedup collapses the repeated traffic, the Plan's ε estimate equals
    the accountant's actual debit, and after the one warmup measurement
    the whole batch is served from cache at zero budget."""
    ap = bench_api_planner(n_exprs=96, restarts=1)
    assert ap["n_distinct"] < ap["n_expressions"]
    assert ap["plan_matches_debit"]
    assert ap["free_hit_ratio_after_warmup"] == 1.0
    assert ap["free_spend_after_warmup"] == 0.0
    # Planning against a warm cache must not regress below cold planning
    # (the PR 7 probe-memoization contract).
    assert ap["plan_warm_le_cold"]
    # The committed trajectory must already carry an api_planner record
    # so this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["api_planner"]
    assert rec["n_expressions"] >= 512
    assert rec["plan_matches_debit"]
    assert rec["free_hit_ratio_after_warmup"] == 1.0
    assert rec["plan_warm_le_cold"]


def test_bench_accelerator_smoke():
    """Quick accelerator case: the O(1) read-path contracts must hold —
    accelerator answers bit-identical to the matvec path, the corner
    gather beating the span projection, and the batched gather clearing
    the 100k answers/s floor even at smoke sizes."""
    ac = bench_accelerator(shape=(16, 8, 4), reps=30, build_reps=2)
    assert ac["single_hit_values_exact"]
    assert ac["batch_values_exact"]
    assert ac["single_hit_speedup"] > 2.0
    assert ac["batch_answers_per_sec"] > 100_000
    # The committed trajectory must already carry the acceptance-level
    # accelerator record, so this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["accelerator"]
    assert rec["single_hit_speedup"] >= 50.0
    assert rec["batch_answers_per_sec"] >= 100_000
    assert rec["single_hit_values_exact"] and rec["batch_values_exact"]


def test_bench_serving_smoke():
    """Quick serving case: the batched sweep must keep its contracts —
    bit-identical answers vs the single-shot loop, a clear win over the
    seed path, and solver agreement with the seed's LSMR answers."""
    s = bench_serving(n=32, trials=5, n_eps=3)
    assert s["answers_bit_identical"]
    assert s["speedup_vs_seed_loop"] > 3.0
    assert s["batch_max_rel_dev_vs_seed_lsmr"] < 1e-6
    # The committed trajectory must already carry a serving record with
    # the acceptance-level speedup, so this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    assert recorded["serving"]["speedup_vs_seed_loop"] >= 3.0
    assert recorded["serving"]["answers_bit_identical"]


def test_bench_observability_smoke():
    """Quick observability case: the instrumentation must be free while
    disabled (< 3% on the batched free-hit path — asserted strictly on
    the committed full-size record; the live quick run uses 16-query
    batches where a few µs of timer jitter is tens of percent, so its
    bound only catches gross regressions), and while enabled every batch
    must produce a complete trace and exact answer counters."""
    ob = bench_observability(shape=(32, 32), batch=16, rounds=5)
    assert ob["overhead_disabled_pct"] < 30.0
    assert ob["trace_complete"]
    assert ob["answers_counter_correct"]
    # The committed trajectory must already carry an observability record
    # within the bound, so this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["observability"]
    assert rec["overhead_disabled_pct"] < 3.0
    assert rec["trace_complete"] and rec["answers_counter_correct"]


def test_bench_server_smoke():
    """Quick server case: the front-end contracts must hold — free hits
    stay free and fast over the wire, pipelining multiplies free-hit
    throughput past the quick-size floor, overload sheds are structured
    429/503s, and the requests the admission controller accepted all
    complete.  The committed full-size record must clear the 10k req/s
    pipelined floor (the live quick run uses a shallow pipeline where
    constant costs dominate, so its floor only catches gross breakage)."""
    sv = bench_server(seq_reps=20, pipeline_depth=64, measured_reps=2)
    assert sv["free_pipelined_qps"] > 2_000
    assert sv["free_hit_p99_ms"] < 250.0
    ov = sv["overload"]
    assert ov["all_responses_structured"]
    assert ov["completed_200"] + ov["shed"] == ov["offered"]
    assert ov["shed"] > 0  # 2x+ overload must actually shed
    # The committed trajectory must already carry a server record so
    # this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["server"]
    assert rec["free_pipelined_qps"] >= 10_000
    assert rec["overload"]["all_responses_structured"]
    assert rec["overload"]["shed_rate"] > 0.0


def test_bench_mechanisms_smoke():
    """Quick mechanisms case: the subsystem contracts must hold — the
    analytic rootmse predictions stay calibrated against empirical trial
    RMSE for both mechanisms, the two mechanisms genuinely differ at
    equal budget, and the zCDP fold's ε axis stays bit-identical to the
    pure-ε fold under identical debit traffic."""
    mc = bench_mechanisms(n=16, trials=10, n_debits=50)
    assert mc["predictions_calibrated"]
    assert mc["rmse_ratio_gaussian_vs_laplace"] != 1.0
    assert mc["accounting"]["eps_fold_identical"]
    assert mc["accounting"]["delta_spent"] > 0.0
    assert mc["accounting"]["rho_spent"] > 0.0
    # The committed trajectory must already carry a mechanisms record so
    # this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["mechanisms"]
    assert rec["predictions_calibrated"]
    assert rec["accounting"]["eps_fold_identical"]
    assert rec["trials"] >= 50


def test_bench_durability_smoke():
    """Quick durability case: every tier-1 run replays a real WAL — the
    recovered accountant must reproduce the writer's exact state, torn
    tails must truncate, and the checksum verify must stay a fraction of
    the warm load it protects."""
    d = bench_durability(n_debits=25, n=16, restarts=1, reps=2)
    assert d["recovery_state_exact"]
    assert d["torn_tail_truncated"]
    assert d["checksum_fraction_of_warm_load"] < 1.0
    # The committed trajectory must already carry a durability record so
    # this benchmark cannot silently rot.
    with open(DEFAULT_JSON) as f:
        recorded = json.load(f)
    rec = recorded["durability"]
    assert rec["recovery_state_exact"]
    assert rec["torn_tail_truncated"]
    assert rec["n_debits"] >= 500


if __name__ == "__main__":
    main()
