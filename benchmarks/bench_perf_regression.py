"""Performance regression benchmark for the optimization engine.

Times the two hot paths this repo's perf engine accelerates and records a
machine-readable trajectory in ``BENCH_PERF.json`` so future PRs can
regress against it:

* ``opt_hdmm`` on a Table-3-style multi-attribute workload (Adult 2-way
  marginals — five attributes, 190 union terms), comparing the engine
  (``workers=4``, Gram caching, dense marginals algebra) against the
  *seed-equivalent path*: sequential execution with the structural-result
  cache disabled (``set_cache_enabled(False)``) and the marginals algebra
  forced onto its sparse/loop code path
  (``set_dense_algebra_enabled(False)``) — the code path the seed commit
  executed on every restart.  The engine must also return a loss equal to
  its own ``workers=1`` run for the same seed (the determinism contract).
* ``kmatmat`` — Algorithm 1 with a trailing batch axis — applying a
  3-factor Kronecker product to a 64-column right-hand side at n = 4096,
  against the seed's per-column ``kmatvec`` loop (what ``Matrix.matmat``
  did before Kronecker gained a batched override).

Run directly for the paper-style report; ``--quick`` shrinks restarts and
repetitions for smoke runs; ``--json`` controls the output path.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

try:
    from .common import Timer, print_table
except ImportError:
    from common import Timer, print_table

from repro.data import adult_domain
from repro.linalg import (
    Dense,
    Identity,
    Prefix,
    Total,
    kmatmat,
    kmatvec,
    set_cache_enabled,
    set_dense_algebra_enabled,
)
from repro.optimize import opt_hdmm
from repro.workload import k_way_marginals

DEFAULT_JSON = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_PERF.json")


def _workload():
    """Fresh workload object per timing run so no memoized state leaks in."""
    return k_way_marginals(adult_domain(), 2)


def bench_opt_hdmm(restarts: int = 25, workers: int = 4, rng: int = 0) -> dict:
    """Engine (workers=4 / workers=1) vs seed-equivalent sequential path."""
    # Seed-equivalent: no structural caching, sparse marginals algebra,
    # strictly sequential restarts.
    set_cache_enabled(False)
    set_dense_algebra_enabled(False)
    try:
        with Timer() as t_seed:
            seed_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=1)
    finally:
        set_cache_enabled(True)
        set_dense_algebra_enabled(True)

    with Timer() as t_w1:
        w1_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=1)
    with Timer() as t_w4:
        w4_res = opt_hdmm(_workload(), restarts=restarts, rng=rng, workers=workers)

    return {
        "workload": "adult-2way-marginals",
        "restarts": restarts,
        "workers": workers,
        "seed_path_seconds": round(t_seed.elapsed, 4),
        "engine_workers1_seconds": round(t_w1.elapsed, 4),
        "engine_seconds": round(t_w4.elapsed, 4),
        "speedup_vs_seed": round(t_seed.elapsed / t_w4.elapsed, 3),
        "loss_seed_path": seed_res.loss,
        "loss_workers1": w1_res.loss,
        "loss_workers4": w4_res.loss,
        "loss_deterministic": bool(w1_res.loss == w4_res.loss),
    }


def bench_kmatmat(batch: int = 64, reps: int = 7) -> dict:
    """Batched kmatmat vs the seed per-column kmatvec loop at n = 4096."""
    rng = np.random.default_rng(0)
    cases = {
        # Range-marginal-style product: the dominant Kronecker shape in
        # marginal reconstruction (rectangular Total + Identity factors).
        "prefix-identity-total": [Prefix(16), Identity(16), Total(16)],
        # Dense strategy-factor product (PIdentity-like leaves).
        "dense-cube": [Dense(rng.standard_normal((16, 16))) for _ in range(3)],
    }
    out: dict = {"n": 4096, "batch": batch, "factors": 3, "cases": {}}
    for name, factors in cases.items():
        n = int(np.prod([A.shape[1] for A in factors]))
        X = rng.standard_normal((n, batch))
        kmatmat(factors, X)  # warm-up
        t_batched = min(
            _timed(lambda: kmatmat(factors, X)) for _ in range(reps)
        )
        t_column = min(
            _timed(
                lambda: np.stack(
                    [kmatvec(factors, X[:, j]) for j in range(batch)], axis=1
                )
            )
            for _ in range(reps)
        )
        out["cases"][name] = {
            "kmatmat_seconds": round(t_batched, 6),
            "column_loop_seconds": round(t_column, 6),
            "speedup": round(t_column / t_batched, 2),
        }
    out["speedup"] = out["cases"]["prefix-identity-total"]["speedup"]
    return out


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run(quick: bool = False, restarts: int | None = None, workers: int = 4) -> dict:
    if restarts is None:
        restarts = 2 if quick else 25
    reps = 3 if quick else 7
    results = {
        "benchmark": "perf_regression",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "opt_hdmm": bench_opt_hdmm(restarts=restarts, workers=workers),
        "kmatmat": bench_kmatmat(reps=reps),
    }
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-run sizes (2 restarts, 3 reps)")
    parser.add_argument("--restarts", type=int, default=None,
                        help="override opt_hdmm restart count")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", default=DEFAULT_JSON,
                        help=f"output path (default {DEFAULT_JSON})")
    args = parser.parse_args()

    results = run(quick=args.quick, restarts=args.restarts, workers=args.workers)
    results["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    h = results["opt_hdmm"]
    k = results["kmatmat"]
    rows = [
        ["opt_hdmm seed path", f"{h['seed_path_seconds']:.2f}s", ""],
        ["opt_hdmm engine (workers=1)", f"{h['engine_workers1_seconds']:.2f}s", ""],
        [
            f"opt_hdmm engine (workers={h['workers']})",
            f"{h['engine_seconds']:.2f}s",
            f"{h['speedup_vs_seed']:.2f}x vs seed",
        ],
    ]
    for name, case in k["cases"].items():
        rows.append(
            [
                f"kmatmat {name}",
                f"{case['kmatmat_seconds'] * 1e3:.2f}ms",
                f"{case['speedup']:.1f}x vs column loop",
            ]
        )
    print_table(
        f"Perf regression ({'quick' if results['quick'] else 'full'}; "
        f"restarts={h['restarts']})",
        ["path", "time", "speedup"],
        rows,
    )
    print(
        f"loss determinism workers=1 vs workers={h['workers']}: "
        f"{h['loss_deterministic']}"
    )

    with open(args.json, "w") as f:
        json.dump(results, f, indent=2)
    print(f"wrote {args.json}")


def test_bench_perf_regression_smoke():
    """Quick-mode engine run: determinism holds and nothing crashes."""
    results = run(quick=True)
    assert results["opt_hdmm"]["loss_deterministic"]
    assert results["kmatmat"]["cases"]["prefix-identity-total"]["speedup"] > 1.0


if __name__ == "__main__":
    main()
