"""Figure 5 (Appendix C.4): solution quality vs time, OPT_0 vs OPT_⊗.

All 2-D range queries on a 64x64 domain — small enough that both the
flat optimizer (OPT_0 over the full 4096-cell Gram) and the decomposed
one (OPT_⊗, two 64-cell problems) apply.  Paper shape: OPT_0 eventually
finds a slightly better strategy (its space is more expressive) but takes
far longer to converge; OPT_⊗ is near-instant.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, Timer, print_table
except ImportError:
    from common import FULL, Timer, print_table

from repro import workload as wl
from repro.core.error import squared_error
from repro.optimize import opt_0, opt_kron

N = 64 if FULL else 32


def compare() -> dict:
    W = wl.all_range_2d(N)
    with Timer() as t_kron:
        kron = opt_kron(W, rng=0)
    V = W.gram().dense()
    with Timer() as t_flat:
        flat = opt_0(V, p=max(1, (N * N) // 16), rng=0, maxiter=200 if FULL else 60)
    flat_err = squared_error(W, flat.strategy)
    return {
        "kron_loss": kron.loss,
        "kron_time": t_kron.elapsed,
        "flat_loss": flat_err,
        "flat_time": t_flat.elapsed,
    }


def main() -> None:
    r = compare()
    rows = [
        ["OPT_kron", f"{r['kron_time']:.2f}", f"{r['kron_loss']:.0f}"],
        ["OPT_0 (flat)", f"{r['flat_time']:.2f}", f"{r['flat_loss']:.0f}"],
        ["quality ratio (kron/flat)", "",
         f"{np.sqrt(r['kron_loss'] / r['flat_loss']):.3f}"],
        ["speedup (flat/kron time)", "",
         f"{r['flat_time'] / max(r['kron_time'], 1e-9):.1f}x"],
    ]
    print_table(
        f"Figure 5: OPT_0 vs OPT_kron on all 2D ranges ({N}x{N})",
        ["optimizer", "time (s)", "loss"], rows,
    )


def test_bench_fig5_kron_much_faster(benchmark):
    r = benchmark.pedantic(compare, rounds=1, iterations=1)
    # The decomposed optimizer is dramatically faster...
    assert r["kron_time"] < r["flat_time"]
    # ...and both land within a reasonable factor of each other.
    assert np.sqrt(r["kron_loss"] / max(r["flat_loss"], 1e-12)) < 2.5


if __name__ == "__main__":
    main()
