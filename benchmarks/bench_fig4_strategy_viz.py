"""Figure 4 (Appendix C.3): visualization of the OPT_0 strategy rows.

Optimizes the all-range workload on n=256 and prints an ASCII rendering
of the non-identity strategy rows A(Θ).  Paper observation: the learned
queries have understandable smooth/banded structure but are *not* the
hierarchical structure heuristic methods assume.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, print_table
except ImportError:
    from common import FULL, print_table

from repro.linalg import AllRange
from repro.optimize import opt_0

N = 256 if FULL else 128
P = 13 if FULL else 8


def strategy_rows() -> np.ndarray:
    V = AllRange(N).gram().dense()
    res = opt_0(V, p=P, rng=0, restarts=3)
    A = res.strategy.dense()
    return A[N:]  # the p non-identity rows


def main() -> None:
    rows = strategy_rows()
    print(f"\n=== Figure 4: the {P} non-identity rows of OPT_0 "
          f"(All Range, n={N}) ===")
    chars = " .:-=+*#%@"
    for i, row in enumerate(rows):
        scaled = row / rows.max()
        line = "".join(
            chars[min(int(v * (len(chars) - 1)), len(chars) - 1)]
            for v in scaled[:: max(1, N // 100)]
        )
        print(f"q{i:02d} |{line}| max={row.max():.4f}")
    print("(each row is one learned strategy query; x-axis = domain cells)")


def test_bench_fig4_rows_have_structure(benchmark):
    rows = benchmark.pedantic(strategy_rows, rounds=1, iterations=1)
    assert rows.shape == (P, N)
    # Learned queries are non-trivial: weights vary across the domain...
    assert rows.std(axis=1).max() > 0
    # ...and every domain cell is covered by some non-identity query.
    coverage = (rows > 1e-6).any(axis=0)
    assert coverage.mean() > 0.9


if __name__ == "__main__":
    main()
