"""Table 4a: error ratios of 1-D mechanisms vs HDMM.

Workloads: All Range, Prefix, Permuted Range at domain sizes 128 / 1024 /
(8192 with REPRO_FULL).  Mechanisms: Identity, Wavelet (Privelet), HB,
GreedyH.  Paper reference values (ratio to HDMM = 1.00):

    All Range  128:  Identity 1.38  Wavelet 1.85  HB 1.38  GreedyH 1.16
    All Range 1024:  Identity 2.36  Wavelet 1.83  HB 1.16  GreedyH 1.33
    Prefix     128:  Identity 1.80  Wavelet 1.78  HB 1.80  GreedyH 1.20
    Permuted  1024:  Identity 2.36  Wavelet 10.57 HB 3.35  GreedyH 2.16
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import workload as wl
from repro.baselines import HB, GreedyH, IdentityMechanism, Privelet
from repro.optimize import opt_hdmm

try:
    from .common import FULL, RESTARTS, fmt_ratio, print_table, ratio
except ImportError:  # direct script execution
    from common import FULL, RESTARTS, fmt_ratio, print_table, ratio

DOMAINS = [128, 1024, 8192] if FULL else [128, 1024]
WORKLOADS = {
    "All Range": wl.all_range,
    "Prefix": wl.prefix_1d,
    "Permuted Range": lambda n: wl.permuted_range(n, seed=7),
}
MECHANISMS = [IdentityMechanism(), Privelet(), HB(), GreedyH()]


def compute_row(workload_name: str, n: int) -> dict:
    W = WORKLOADS[workload_name](n)
    hdmm = opt_hdmm(W, restarts=RESTARTS, rng=0).loss
    out = {"workload": workload_name, "n": n, "HDMM": 1.0}
    for mech in MECHANISMS:
        out[mech.name] = ratio(mech.squared_error(W), hdmm)
    return out


def main() -> None:
    rows = []
    for name in WORKLOADS:
        for n in DOMAINS:
            r = compute_row(name, n)
            rows.append(
                [name, n]
                + [fmt_ratio(r[m.name]) for m in MECHANISMS]
                + [fmt_ratio(1.0)]
            )
    print_table(
        "Table 4a: 1D error ratios (vs HDMM = 1.00)",
        ["Workload", "Domain", "Identity", "Wavelet", "HB", "GreedyH", "HDMM"],
        rows,
    )


# -- pytest-benchmark targets -------------------------------------------------


@pytest.fixture(scope="module")
def allrange_row():
    return compute_row("All Range", 128)


def test_bench_table4a_allrange_128(benchmark, allrange_row):
    row = benchmark.pedantic(
        lambda: compute_row("All Range", 128), rounds=1, iterations=1
    )
    # Shape: HDMM is best; Identity/HB around 1.4x; GreedyH close behind.
    assert all(row[m.name] >= 0.99 for m in MECHANISMS)
    assert 1.1 < row["Identity"] < 1.9


def test_bench_table4a_permuted_localsmash(benchmark):
    """Permuted Range destroys locality: wavelet/hierarchical baselines
    degrade sharply while HDMM adapts (paper: Wavelet 10.57 at n=1024)."""
    n = 256 if not FULL else 1024
    row = benchmark.pedantic(
        lambda: compute_row("Permuted Range", n), rounds=1, iterations=1
    )
    assert row["Privelet"] > 2.0
    assert row["HB"] > 1.5


if __name__ == "__main__":
    main()
