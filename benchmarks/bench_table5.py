"""Table 5: up-to-K-way marginals on an 8-dimensional domain.

Workloads: all i-way marginals with i <= K, K = 1..8, over a domain of
10^8 (8 attributes of size 10).  Mechanisms: Identity, LM, DataCube.
Paper reference ratios (HDMM = 1.00):

    K=1: Identity 435.19  LM 1.18  DataCube 1.12
    K=2: Identity  43.89  LM 1.43  DataCube 1.03
    K=4: Identity   2.73  LM 3.03  DataCube 1.21
    K=8: Identity   1.06  LM 24.94 DataCube 5.76

Shape: LM near-optimal for small K, Identity for large K, HDMM best
everywhere with the crossover around K=4-5.
"""

from __future__ import annotations

import pytest

try:
    from .common import FULL, RESTARTS, fmt_ratio, print_table, ratio
except ImportError:  # direct script execution
    from common import FULL, RESTARTS, fmt_ratio, print_table, ratio

from repro import workload as wl
from repro.baselines import DataCube, IdentityMechanism, LaplaceMechanism
from repro.data import synthetic_domain
from repro.optimize import opt_hdmm

D = 8
N_PER_DIM = 10
KS = list(range(1, 9)) if FULL else [1, 2, 3, 4, 6, 8]


def compute_row(k: int) -> dict:
    domain = synthetic_domain(D, N_PER_DIM)
    W = wl.up_to_k_marginals(domain, k)
    hdmm = opt_hdmm(W, restarts=RESTARTS, rng=0).loss
    return {
        "K": k,
        "Identity": ratio(IdentityMechanism().squared_error(W), hdmm),
        "LM": ratio(LaplaceMechanism().squared_error(W), hdmm),
        "DataCube": ratio(DataCube().squared_error(W), hdmm),
    }


def main() -> None:
    rows = []
    for k in KS:
        r = compute_row(k)
        rows.append(
            [k, fmt_ratio(r["Identity"]), fmt_ratio(r["LM"]),
             fmt_ratio(r["DataCube"]), fmt_ratio(1.0)]
        )
    print_table(
        "Table 5: up-to-K-way marginals on 10^8 (ratios vs HDMM)",
        ["K", "Identity", "LM", "DataCube", "HDMM"],
        rows,
    )


def test_bench_table5_small_k(benchmark):
    row = benchmark.pedantic(lambda: compute_row(1), rounds=1, iterations=1)
    # LM near-optimal at K=1; Identity catastrophically bad (paper: 435x).
    assert row["LM"] < 2.0
    assert row["Identity"] > 50


def test_bench_table5_large_k(benchmark):
    row = benchmark.pedantic(lambda: compute_row(8), rounds=1, iterations=1)
    # Identity near-optimal at K=8; LM very bad (paper: 24.9x).
    assert row["Identity"] < 2.0
    assert row["LM"] > 5


def test_bench_table5_crossover():
    """The Identity/LM crossover falls in the middle of the K range."""
    lo = compute_row(2)
    hi = compute_row(6)
    assert lo["LM"] < lo["Identity"]
    assert hi["LM"] > hi["Identity"]


if __name__ == "__main__":
    main()
