"""Ablation benches for the design choices called out in DESIGN.md.

* ``optm_vs_kron`` — the marginals parameterization vs generic product
  strategies on marginal workloads (why OPT_M exists);
* ``union_coupling`` — the surrogate-workload block descent of Problem 3
  vs naively optimizing each attribute on its average Gram (why the
  coupled objective matters);
* ``union_vs_single`` — OPT_+ vs OPT_⊗ on the (R x T ∪ T x R) workload
  (why union-of-product output strategies exist, Section 6.2).
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from .common import FULL, print_table
except ImportError:
    from common import FULL, print_table

from repro import workload as wl
from repro.core.error import gram_inverse_trace, squared_error
from repro.data import synthetic_domain
from repro.linalg import Kronecker
from repro.optimize import opt_0, opt_kron, opt_marginals, opt_union
from repro.workload.util import as_union_of_products


def ablation_optm_vs_kron(k: int = 2) -> dict:
    domain = synthetic_domain(5, 8)
    W = wl.up_to_k_marginals(domain, k)
    marg = opt_marginals(W, rng=0).loss
    kron = opt_kron(W, rng=0).loss
    return {"marginals": marg, "kron": kron, "advantage": np.sqrt(kron / marg)}


def ablation_union_coupling() -> dict:
    """Coupled block descent vs uncoupled per-attribute optimization."""
    W = wl.prefix_identity(64)
    coupled = opt_kron(W, ps=[4, 4], rng=0).loss

    # Uncoupled: optimize each attribute on the unweighted average Gram,
    # ignoring the cross-attribute loss products of Theorem 6.
    terms = as_union_of_products(W)
    strategies = []
    for i in range(2):
        avg = sum(f[1][i].gram().dense() for f in terms) / len(terms)
        strategies.append(opt_0(avg, p=4, rng=0).strategy)
    uncoupled = squared_error(W, Kronecker(strategies))
    return {
        "coupled": coupled,
        "uncoupled": uncoupled,
        "advantage": np.sqrt(uncoupled / coupled),
    }


def ablation_union_vs_single(n: int = 32) -> dict:
    W = wl.range_total_union(n)
    single = opt_kron(W, rng=0).loss
    union = opt_union(W, rng=0).loss
    return {"single": single, "union": union, "advantage": np.sqrt(single / union)}


def main() -> None:
    r1 = ablation_optm_vs_kron()
    r2 = ablation_union_coupling()
    r3 = ablation_union_vs_single()
    print_table(
        "Ablations",
        ["ablation", "baseline loss", "chosen-design loss", "advantage"],
        [
            ["OPT_M vs OPT_kron (2-way marginals, 8^5)",
             f"{r1['kron']:.4g}", f"{r1['marginals']:.4g}",
             f"{r1['advantage']:.2f}x"],
            ["coupled vs uncoupled union descent (P,I 64)",
             f"{r2['uncoupled']:.4g}", f"{r2['coupled']:.4g}",
             f"{r2['advantage']:.2f}x"],
            ["OPT_+ vs OPT_kron (RT ∪ TR, 32)",
             f"{r3['single']:.4g}", f"{r3['union']:.4g}",
             f"{r3['advantage']:.2f}x"],
        ],
    )


def test_bench_ablation_optm_wins_on_marginals(benchmark):
    r = benchmark.pedantic(ablation_optm_vs_kron, rounds=1, iterations=1)
    assert r["advantage"] > 0.99  # OPT_M at least matches generic products


def test_bench_ablation_coupling_never_hurts(benchmark):
    r = benchmark.pedantic(ablation_union_coupling, rounds=1, iterations=1)
    assert r["advantage"] > 0.99


def test_bench_ablation_union_beats_single(benchmark):
    r = benchmark.pedantic(ablation_union_vs_single, rounds=1, iterations=1)
    # Section 6.2: the union strategy clearly wins on RT ∪ TR.
    assert r["advantage"] > 1.1


if __name__ == "__main__":
    main()
