"""Table 4b: error ratios of 2-D mechanisms vs HDMM.

Workloads: P x P, R x R, (R x T ∪ T x R), (P x I ∪ I x P) at 64x64 /
256x256 / (1024x1024 with REPRO_FULL).  Mechanisms: Identity, Wavelet,
HB, QuadTree.  Paper reference values at 64x64:

    P x P:          Identity 2.35  Wavelet 3.40  HB 1.41  QuadTree 1.72
    R x R:          Identity 1.54  Wavelet 3.59  HB 1.45  QuadTree 1.72
    R x T ∪ T x R:  Identity 5.00  Wavelet 7.00  HB 3.51  QuadTree 4.13
    P x I ∪ I x P:  Identity 1.11  Wavelet 5.26  HB 2.08  QuadTree 3.32
"""

from __future__ import annotations

import pytest

from repro import workload as wl
from repro.baselines import HB, IdentityMechanism, Privelet, QuadTree
from repro.optimize import opt_hdmm

try:
    from .common import FULL, RESTARTS, fmt_ratio, print_table, ratio
except ImportError:  # direct script execution
    from common import FULL, RESTARTS, fmt_ratio, print_table, ratio

DOMAINS = [64, 256, 1024] if FULL else [64]
WORKLOADS = {
    "P x P": wl.prefix_2d,
    "R x R": wl.all_range_2d,
    "RT ∪ TR": wl.range_total_union,
    "PI ∪ IP": wl.prefix_identity,
}
MECHANISMS = [IdentityMechanism(), Privelet(), HB(), QuadTree()]


def compute_row(workload_name: str, n: int) -> dict:
    W = WORKLOADS[workload_name](n)
    hdmm = opt_hdmm(W, restarts=RESTARTS, rng=0).loss
    out = {"workload": workload_name, "n": n, "HDMM": 1.0}
    for mech in MECHANISMS:
        out[mech.name] = ratio(mech.squared_error(W), hdmm)
    return out


def main() -> None:
    rows = []
    for name in WORKLOADS:
        for n in DOMAINS:
            r = compute_row(name, n)
            rows.append(
                [name, f"{n}x{n}"]
                + [fmt_ratio(r[m.name]) for m in MECHANISMS]
                + [fmt_ratio(1.0)]
            )
    print_table(
        "Table 4b: 2D error ratios (vs HDMM = 1.00)",
        ["Workload", "Domain", "Identity", "Wavelet", "HB", "QuadTree", "HDMM"],
        rows,
    )


def test_bench_table4b_prefix2d(benchmark):
    row = benchmark.pedantic(lambda: compute_row("P x P", 64), rounds=1, iterations=1)
    assert all(row[m.name] >= 0.99 for m in MECHANISMS)  # HDMM never loses
    assert row["Privelet"] > row["HB"]  # wavelets worst of the tree family here


def test_bench_table4b_union_workload(benchmark):
    """(R x T) ∪ (T x R): the union workload where single-product pairing
    is suboptimal — all baselines degrade sharply (paper: 3.5-7x)."""
    row = benchmark.pedantic(
        lambda: compute_row("RT ∪ TR", 64), rounds=1, iterations=1
    )
    assert min(row[m.name] for m in MECHANISMS) > 1.5


if __name__ == "__main__":
    main()
